"""Checkpoint engine: async-save stall vs synchronous save.

The engine's contract is that the training thread pays only for the
in-memory snapshot; serialization, CRC trailer, manifest commit, and
replication ride a background writer.  This bench measures, per world
size:

* ``sync_save_ms`` — wall time of a full synchronous engine save
  (``async_write=False``): snapshot + serialize + write + commit.
* ``async_stall_ms`` — training-thread blocked time of the same save
  with ``async_write=True`` (snapshot only).
* ``stall_pct`` — their ratio.

The acceptance gate (exit 1 on failure): the async stall must stay
under 20% of the synchronous save.

Run ``python benchmarks/bench_checkpoint.py --smoke`` for the CI-sized
run; results land in ``BENCH_checkpoint.json`` (``REPRO_BENCH_BASELINE=1``
writes the committed perf-guard baseline instead).
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import nn
from repro.autograd import Tensor
from repro.checkpoint import CheckpointEngine
from repro.comm import run_distributed
from repro.optim import Adam
from repro.utils import manual_seed

IN_FEATURES = 64
CLASSES = 10
BATCH = 16
LR = 1e-3

_rng = np.random.default_rng(0)
X = _rng.standard_normal((BATCH * 8, IN_FEATURES))
Y = _rng.integers(0, CLASSES, BATCH * 8)


def _model(hidden):
    manual_seed(0)
    return nn.Sequential(
        nn.Linear(IN_FEATURES, hidden), nn.ReLU(),
        nn.Linear(hidden, hidden), nn.ReLU(),
        nn.Linear(hidden, CLASSES),
    )


def bench_world(world, hidden, saves, replication):
    """Median sync vs async save-stall per rank at one world size."""
    loss_fn = nn.CrossEntropyLoss()
    results = {}

    def body(rank):
        from repro.comm.distributed import get_context

        model = _model(hidden)
        opt = Adam(model.parameters(), lr=LR)
        shard = slice(rank * BATCH, (rank + 1) * BATCH)
        loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
        opt.step()
        hub = get_context().default_group.hub if replication > 1 else None

        sync_ms, stall_ms = [], []
        for mode in ("sync", "async"):
            root = tempfile.mkdtemp(prefix=f"ckpt-bench-{mode}-")
            engine = CheckpointEngine(
                root, rank=rank, world=world, hub=hub,
                replication_factor=replication,
                async_write=(mode == "async"),
            )
            times = sync_ms if mode == "sync" else stall_ms
            for i in range(saves):
                t0 = time.perf_counter()
                engine.save_full(model, opt, iteration=i + 1)
                times.append((time.perf_counter() - t0) * 1000.0)
            engine.wait(timeout=30.0)
            engine.close()
            shutil.rmtree(root, ignore_errors=True)
        return float(np.median(sync_ms)), float(np.median(stall_ms))

    medians = run_distributed(world, body, backend="gloo", timeout=120)
    results["sync_save_ms"] = max(m[0] for m in medians)
    results["async_stall_ms"] = max(m[1] for m in medians)
    results["stall_pct"] = (
        100.0 * results["async_stall_ms"] / results["sync_save_ms"]
        if results["sync_save_ms"] > 0 else 0.0
    )
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: smaller model, fewer saves")
    parser.add_argument("--saves", type=int, default=None,
                        help="save operations per configuration")
    parser.add_argument("--out", default=None, help="output JSON path override")
    args = parser.parse_args(argv)

    from common import emit_json, report

    if args.smoke:
        worlds, hidden, saves = [2], 256, args.saves or 5
    else:
        worlds, hidden, saves = [2, 4], 512, args.saves or 9

    print(f"[bench_checkpoint] worlds={worlds} hidden={hidden} saves={saves}")
    rows = []
    for world in worlds:
        for replication in (1, 2):
            row = {"mode": f"rf{replication}", "world": world,
                   "hidden": hidden}
            row.update(bench_world(world, hidden, saves, replication))
            rows.append(row)
            print(
                f"  world={world} rf={replication}: sync "
                f"{row['sync_save_ms']:.2f} ms, async stall "
                f"{row['async_stall_ms']:.2f} ms "
                f"({row['stall_pct']:.1f}%)"
            )
    report(
        "checkpoint",
        f"Async checkpoint stall vs synchronous save (hidden={hidden})",
        ["world", "mode", "sync_save_ms", "async_stall_ms", "stall_pct"],
        [[r["world"], r["mode"], r["sync_save_ms"], r["async_stall_ms"],
          r["stall_pct"]] for r in rows],
    )

    checks = {
        "async_stall_under_20pct_of_sync": all(
            r["stall_pct"] < 20.0 for r in rows
        ),
    }
    emit_json(
        "checkpoint",
        {"smoke": bool(args.smoke), "saves": saves, "measured": rows,
         "checks": checks},
        path=args.out,
    )

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"[bench_checkpoint] FAILED checks: {failed}")
        return 1
    worst = max(rows, key=lambda r: r["stall_pct"])
    print(
        f"[bench_checkpoint] OK — worst async stall is "
        f"{worst['stall_pct']:.1f}% of the synchronous save "
        f"(world={worst['world']}, {worst['mode']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
