"""Microbenchmarks: real wall-clock cost of the threaded collectives.

Unlike the figure benches (which run on the calibrated cost models),
these time the *actual* in-process implementations — the ring, tree,
halving-doubling, and hierarchical AllReduce over the thread transport,
and a full threaded DDP training iteration.  Useful for tracking
regressions in the library itself.
"""

import os
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import nn
from repro.autograd import Tensor
from repro.comm import algorithms as alg
from repro.comm import run_distributed
from repro.comm.transport import TransportHub
from repro.core import DistributedDataParallel
from repro.optim import SGD
from repro.utils import manual_seed

WORLD = 4
PAYLOAD = 65_536  # fp64 elements per rank


def _run_collective(algorithm_name):
    fn = alg.ALLREDUCE_ALGORITHMS[algorithm_name]
    hub = TransportHub(WORLD, default_timeout=10)
    rng = np.random.default_rng(0)
    inputs = [rng.standard_normal(PAYLOAD) for _ in range(WORLD)]
    outputs = [None] * WORLD

    def body(rank):
        buf = inputs[rank].copy()
        fn(hub, list(range(WORLD)), rank, buf, "sum", tag="b")
        outputs[rank] = buf

    threads = [threading.Thread(target=body, args=(r,)) for r in range(WORLD)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    return outputs


def bench_micro_allreduce_ring(benchmark):
    outputs = benchmark(_run_collective, "ring")
    assert np.allclose(outputs[0], outputs[-1])


def bench_micro_allreduce_tree(benchmark):
    outputs = benchmark(_run_collective, "tree")
    assert np.allclose(outputs[0], outputs[-1])


def bench_micro_allreduce_halving_doubling(benchmark):
    outputs = benchmark(_run_collective, "halving_doubling")
    assert np.allclose(outputs[0], outputs[-1])


def bench_micro_allreduce_hierarchical(benchmark):
    outputs = benchmark(_run_collective, "hierarchical")
    assert np.allclose(outputs[0], outputs[-1])


def bench_micro_allreduce_naive(benchmark):
    outputs = benchmark(_run_collective, "naive")
    assert np.allclose(outputs[0], outputs[-1])


def bench_micro_ddp_iteration(benchmark):
    """One full threaded DDP iteration (2 ranks, small MLP)."""
    rng = np.random.default_rng(1)
    X, Y = rng.standard_normal((8, 16)), rng.integers(0, 4, 8)

    def one_run():
        def body(rank):
            manual_seed(0)
            model = nn.Sequential(nn.Linear(16, 64), nn.ReLU(), nn.Linear(64, 4))
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.01)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(3):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return True

        return run_distributed(2, body, backend="gloo")

    results = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert all(results)


def bench_micro_bucket_assignment(benchmark):
    """Bucket assignment over a realistic (ResNet50-sized) param list."""
    from repro.core.bucket import compute_bucket_assignment
    from repro.simulation.models import resnet50_profile

    params = list(resnet50_profile().params)
    buckets = benchmark(compute_bucket_assignment, params, 25 * 1024 * 1024)
    assert buckets


def main(argv=None):
    """Standalone mode: time each collective and emit BENCH_collectives_micro.json.

    Shares the ``emit_json`` envelope with ``bench_hotpath.py`` so both
    benches produce the same machine-readable result format without
    requiring pytest-benchmark.
    """
    from common import emit_json, report

    iters = 3 if (argv and "--smoke" in argv) else 7
    rows = []
    timings = {}
    for name in ["ring", "tree", "halving_doubling", "hierarchical", "naive"]:
        samples = []
        for _ in range(iters):
            start = time.perf_counter()
            outputs = _run_collective(name)
            samples.append(time.perf_counter() - start)
            assert np.allclose(outputs[0], outputs[-1])
        median = sorted(samples)[len(samples) // 2]
        timings[name] = median
        rows.append([name, median])
    report(
        "collectives_micro",
        f"AllReduce microbench ({WORLD} ranks, {PAYLOAD} fp64 elems, median of {iters})",
        ["algorithm", "seconds"],
        rows,
    )
    emit_json(
        "collectives_micro",
        {
            "world": WORLD,
            "payload_elems": PAYLOAD,
            "iters": iters,
            "median_seconds": timings,
        },
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
