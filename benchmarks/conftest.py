"""Make the benchmarks directory importable as a flat module set."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
