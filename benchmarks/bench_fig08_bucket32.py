"""Figure 8: per-iteration latency vs bucket size on 32 GPUs.

Expected shapes versus Fig. 7: 0 MB degrades clearly from 16 to 32 GPUs
(per-gradient reductions slow down with more participants), while
bucket sizes >= 5 MB show no noticeable regression.
"""

from repro.experiments import figures
from repro.simulation import SimulationConfig, TrainingSimulator
from repro.simulation.models import resnet50_profile

from common import report


def bench_fig08_bucket_size_32gpus(benchmark):
    rows, best = benchmark(figures.bucket_size_sweep, 32)
    report(
        "fig08_bucket32",
        "Fig 8: per-iteration latency vs bucket size, 32 GPUs",
        ["model", "backend", "bucket_MB", "median_s", "p25_s", "p75_s"],
        rows,
    )
    print(f"best bucket sizes: {best}")

    def median_at(world, cap):
        sim = TrainingSimulator(
            SimulationConfig(
                model=resnet50_profile(), world_size=world, backend="nccl",
                bucket_cap_mb=cap,
            )
        )
        return sim.median_latency(16)

    zero_regression = median_at(32, 0) / median_at(16, 0)
    mid_regression = median_at(32, 25) / median_at(16, 25)
    print(
        f"16->32 GPU regression: 0MB buckets {zero_regression:.2f}x, "
        f"25MB buckets {mid_regression:.2f}x"
    )
    assert zero_regression > mid_regression
    assert mid_regression < 1.1
