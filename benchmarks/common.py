"""Shared benchmark-harness utilities.

Every bench prints the rows/series the corresponding paper table or
figure reports (visible with ``pytest benchmarks/ --benchmark-only -s``)
and appends them to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can cite the regenerated numbers.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BASELINES_DIR = os.path.join(os.path.dirname(__file__), "baselines")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: World sizes used by the scalability experiments (paper Fig. 9/10).
SCALABILITY_WORLDS = [1, 2, 4, 8, 16, 32, 64, 128, 256]

#: Bucket-size sweeps (paper Figs. 7/8): MB values per model.
RESNET_BUCKET_CAPS = [0, 5, 10, 25, 50]
BERT_BUCKET_CAPS = [0, 5, 10, 25, 50, 100, 200]


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def report(name: str, title: str, headers: Sequence[str], rows: List[Sequence]) -> str:
    """Render, print, and persist one table; returns the rendered text."""
    text = render_table(title, headers, rows)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text


def save_text(name: str, text: str) -> None:
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def emit_json(name: str, payload: dict, path: str | None = None) -> str:
    """Write one machine-readable result file ``BENCH_<name>.json``.

    The shared emit format for every benchmark: results land at the repo
    root (where trajectory tooling and the CI artifact step pick them
    up) with a common envelope — bench name, unix timestamp, python and
    platform strings — wrapped around the bench-specific ``payload``.
    Returns the written path.

    Baseline mode: with ``REPRO_BENCH_BASELINE=1`` in the environment
    (and no explicit ``path``), the result is written to
    ``benchmarks/baselines/<name>.json`` instead — the committed
    reference that ``tools/perfguard.py`` compares fresh runs against —
    so blessing a new baseline never clobbers the repo-root BENCH files.
    """
    if path is None and os.environ.get("REPRO_BENCH_BASELINE", "").lower() in (
        "1", "true", "on", "yes",
    ):
        os.makedirs(BASELINES_DIR, exist_ok=True)
        target = os.path.join(BASELINES_DIR, f"{name}.json")
    else:
        target = path or os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    document = {
        "bench": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        **payload,
    }
    with open(target, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {target}")
    return target


def env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default
