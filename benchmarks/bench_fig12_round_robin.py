"""Figure 12: round-robin process groups (rr1 / rr3 / rr5).

Expected shapes: negligible differences for ResNet50 on NCCL (bandwidth
is not its bottleneck); consistent rr3 > rr1 wins for ResNet50 on Gloo;
the largest acceleration for BERT on NCCL (one NCCL group cannot
saturate the link — paper saw rr3 33% faster at 16 GPUs).
"""

from repro.experiments import figures

from common import report


def bench_fig12_round_robin(benchmark):
    results = benchmark(figures.fig12_round_robin)
    rows = [
        (model, backend, f"rr{k}", world, latency)
        for (model, backend, k), latencies in results.items()
        for world, latency in zip(figures.ROUND_ROBIN_WORLDS, latencies)
    ]
    report(
        "fig12_round_robin",
        "Fig 12: median per-iteration latency with round-robin process groups",
        ["model", "backend", "groups", "gpus", "median_latency_s"],
        rows,
    )
    at16 = figures.ROUND_ROBIN_WORLDS.index(16)

    def gain(model, backend):
        rr1 = results[(model, backend, 1)][at16]
        rr3 = results[(model, backend, 3)][at16]
        return 1 - rr3 / rr1

    summary = [
        (model, backend, f"{gain(model, backend) * 100:.0f}%")
        for model in ("resnet50", "bert")
        for backend in ("nccl", "gloo")
    ]
    report(
        "fig12_summary",
        "Fig 12 summary: rr3 speedup over rr1 at 16 GPUs",
        ["model", "backend", "rr3_speedup"],
        summary,
    )
    assert abs(gain("resnet50", "nccl")) < 0.10  # negligible
    assert gain("bert", "nccl") > 0.15  # prominent (paper: 33%)
    assert gain("resnet50", "gloo") > 0.05  # consistent
