"""Figure 10: skipping gradient synchronization (sync every n).

Expected shape: skipping amortizes communication — at 256 GPUs, syncing
every 8 iterations saves roughly 38% (NCCL) and 57% (Gloo) for ResNet50
in the paper; the NCCL 128->256 jump appears in every cadence.
"""

from repro.experiments import figures

from common import report

CADENCES = [1, 2, 4, 8]


def bench_fig10_skip_sync(benchmark):
    results = benchmark(figures.fig10_skip_sync)
    rows = []
    for (backend, cadence), latencies in results.items():
        label = "baseline" if cadence == 1 else f"no_sync_{cadence}"
        for world, latency in zip(figures.SCALABILITY_WORLDS, latencies):
            rows.append((backend, label, world, latency))
    report(
        "fig10_skip_sync",
        "Fig 10: average per-iteration latency, gradient sync every n iterations (ResNet50)",
        ["backend", "cadence", "gpus", "avg_latency_s"],
        rows,
    )
    savings_rows = []
    for backend in ("nccl", "gloo"):
        base = results[(backend, 1)][-1]
        for cadence in CADENCES[1:]:
            saved = 1 - results[(backend, cadence)][-1] / base
            savings_rows.append((backend, f"no_sync_{cadence}", f"{saved * 100:.0f}%"))
    report(
        "fig10_savings",
        "Fig 10 summary: savings at 256 GPUs vs syncing every iteration",
        ["backend", "cadence", "latency_saved"],
        savings_rows,
    )
    nccl8 = 1 - results[("nccl", 8)][-1] / results[("nccl", 1)][-1]
    gloo8 = 1 - results[("gloo", 8)][-1] / results[("gloo", 1)][-1]
    assert 0.25 < nccl8 < 0.70  # paper: 38%
    assert 0.40 < gloo8 < 0.80  # paper: 57%
    assert gloo8 > nccl8
