"""Figure 7: per-iteration latency vs bucket size on 16 GPUs.

Expected shape: 0 MB (per-gradient AllReduce) is clearly worst; NCCL's
optimum is 10-25 MB for ResNet50 and ~50 MB for BERT (bigger models
want bigger buckets); Gloo prefers small (~5-10 MB) buckets.
"""

from repro.experiments import figures

from common import report


def bench_fig07_bucket_size_16gpus(benchmark):
    rows, best = benchmark(figures.bucket_size_sweep, 16)
    report(
        "fig07_bucket16",
        "Fig 7: per-iteration latency vs bucket size, 16 GPUs",
        ["model", "backend", "bucket_MB", "median_s", "p25_s", "p75_s"],
        rows,
    )
    print(f"best bucket sizes: {best}")
    assert best[("resnet50", "nccl")] in (10, 25)
    assert best[("bert", "nccl")] in (50, 100)
    assert best[("resnet50", "gloo")] in (5, 10)
    assert best[("bert", "gloo")] in (5, 10, 25)
