"""Ablation: parameter averaging vs DDP (paper §2.2).

Two measurements:

1. **Timeline**: parameter averaging forces computation and
   communication into non-overlapping phases separated by
   ``optimizer.step()`` and communicates *parameters* (same volume as
   gradients) with zero overlap; DDP overlaps bucketed gradient
   AllReduce with the backward pass.
2. **Correctness drift**: with a stateful nonlinear optimizer (Adam),
   parameter averaging diverges from local large-batch training while
   DDP matches it to machine precision (measured on the threaded
   backend).
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.comm import get_context, run_distributed
from repro.core import DistributedDataParallel
from repro.core.param_avg import ParameterAveragingTrainer
from repro.optim import Adam
from repro.simulation import SimulationConfig, TrainingSimulator
from repro.simulation.models import resnet50_profile
from repro.utils import manual_seed

from common import report


def bench_param_averaging_timeline(benchmark):
    from repro.experiments import ablations

    rows = benchmark(ablations.param_averaging_timeline)
    report(
        "ablation_param_avg_timeline",
        "Ablation: DDP (overlapped) vs parameter averaging (phase-separated), ResNet50",
        ["backend", "gpus", "ddp_latency_s", "param_avg_latency_s", "ddp_advantage"],
        rows,
    )
    for _, _, ddp_latency, avg_latency, _ in rows:
        assert ddp_latency <= avg_latency


def bench_param_averaging_drift(benchmark):
    """Measured §2.2 divergence with Adam on the threaded backend."""
    rng = np.random.default_rng(17)
    X, Y = rng.standard_normal((8, 6)), rng.integers(0, 4, 8)

    def measure():
        def make_model():
            manual_seed(23)
            return nn.Sequential(nn.Linear(6, 16), nn.ReLU(), nn.Linear(16, 4))

        # local full-batch reference
        reference = make_model()
        opt = Adam(reference.parameters(), lr=0.05)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(8):
            opt.zero_grad()
            loss_fn(reference(Tensor(X)), Y).backward()
            opt.step()
        ref_state = reference.state_dict()

        def ddp_body(rank):
            model = make_model()
            ddp = DistributedDataParallel(model)
            opt = Adam(ddp.parameters(), lr=0.05)
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(8):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        def avg_body(rank):
            model = make_model()
            pg = get_context().default_group
            opt = Adam(model.parameters(), lr=0.05)
            trainer = ParameterAveragingTrainer(model, opt, pg)
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(8):
                trainer.zero_grad()
                loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
                trainer.step()
            return model.state_dict()

        ddp_state = run_distributed(2, ddp_body, backend="gloo")[0]
        avg_state = run_distributed(2, avg_body, backend="gloo")[0]
        ddp_drift = max(np.abs(ddp_state[n] - ref_state[n]).max() for n in ref_state)
        avg_drift = max(np.abs(avg_state[n] - ref_state[n]).max() for n in ref_state)
        return ddp_drift, avg_drift

    ddp_drift, avg_drift = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "ablation_param_avg_drift",
        "Ablation: drift from local full-batch Adam training after 8 iterations",
        ["method", "max_param_drift"],
        [("DDP (gradient averaging)", f"{ddp_drift:.2e}"),
         ("parameter averaging", f"{avg_drift:.2e}")],
    )
    assert ddp_drift < 1e-9
    assert avg_drift > 1e-4
