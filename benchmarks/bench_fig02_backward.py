"""Figure 2(c,d): backward-pass time vs number of ready gradients.

ResNet152 (~60 M params): the GPU backward completes in ~250 ms, the
CPU backward in ~6 s.  Jittered replays give the paper's median +
measured-range band.
"""

from repro.experiments import figures

from common import report


def bench_fig02c_gpu_backward_curve(benchmark):
    rows = benchmark(figures.fig02_backward_curve, "gpu")
    report(
        "fig02c_gpu",
        "Fig 2(c): ResNet152 backward on GPU — time to k ready grads (median, range)",
        ["ready_params_M", "median_s", "min_s", "max_s"],
        rows,
    )
    total = rows[-1][1]
    assert 0.2 < total < 0.32, f"GPU backward anchor drifted: {total}"


def bench_fig02d_cpu_backward_curve(benchmark):
    rows = benchmark(figures.fig02_backward_curve, "cpu")
    report(
        "fig02d_cpu",
        "Fig 2(d): ResNet152 backward on CPU — time to k ready grads (median, range)",
        ["ready_params_M", "median_s", "min_s", "max_s"],
        rows,
    )
    total = rows[-1][1]
    assert 5.0 < total < 7.5, f"CPU backward anchor drifted: {total}"
