"""Ablation: gradient order prediction (paper §6.2.1 future work).

When a model's execution order diverges from its definition order,
reverse-order bucketing launches the wrong bucket first, destroying
overlap; tracing the real ready order and rebucketing restores it.
"""

from repro.experiments import ablations

from common import report


def bench_order_prediction(benchmark):
    matched, mismatched, traced = benchmark(ablations.order_prediction)
    rows = [
        ("definition order matches execution", matched, "-"),
        ("mismatched execution, reverse-order buckets", mismatched,
         f"{(mismatched / matched - 1) * 100:+.0f}%"),
        ("mismatched execution, traced rebucketing", traced,
         f"{(traced / matched - 1) * 100:+.0f}%"),
    ]
    report(
        "ablation_order_prediction",
        "Ablation: backward-order tracing and rebucketing (ResNet50, 32 GPUs, nccl)",
        ["policy", "median_latency_s", "vs_matched"],
        rows,
    )
    assert mismatched > matched
    assert traced < mismatched
