"""Figure 5: GPU connection topology of one evaluation server.

Renders the 8-GPU hybrid cube-mesh matrix (NV2/NV1/NODE tiers) the
paper's Fig. 5 depicts, and reports the link-tier bandwidth hierarchy
that drives the intra- vs inter-server cost cliff.
"""

from repro.simnet import LinkType, dgx1_topology
from repro.simnet.topology import LINK_BANDWIDTH

from common import save_text


def bench_fig05_topology_matrix(benchmark):
    topo = benchmark(dgx1_topology)
    lines = [topo.render(), ""]
    lines.append("link-tier bandwidths (bytes/s, unidirectional):")
    for tier in (LinkType.NV2, LinkType.NV1, LinkType.NODE, LinkType.NIC):
        lines.append(f"  {tier.value:>4}: {LINK_BANDWIDTH[tier]:.1e}")
    nv_ring = topo.ring_bandwidth([0, 1, 2, 3, 7, 6, 5, 4])
    naive_ring = topo.ring_bandwidth(list(range(8)))
    lines.append(f"NVLink-only 8-GPU ring bottleneck: {nv_ring:.1e} B/s")
    lines.append(f"naive-order 8-GPU ring bottleneck: {naive_ring:.1e} B/s")
    save_text("fig05_topology", "\n".join(lines))
    assert nv_ring >= naive_ring
