"""Figure 11: accuracy impact of skipping synchronization (real training).

Trains the ConvNet on synthetic MNIST with 2 rank threads and gradient
synchronization every 1/2/4/8 iterations (accumulating via ``no_sync``
in between, optimizer stepping once per sync), in the paper's two
regimes:

* (a) batch size 8, lr 0.02 — skipping barely affects convergence;
* (b) batch size 256, lr 0.06 — accumulated large batches implicitly
  need a smaller learning rate, so no_sync hurts the final loss
  (the paper's red-box observation).

Loss curves are smoothed with an order-3 low-pass ``filtfilt`` exactly
as the paper describes.  Only the NCCL-equivalent path matters for
convergence (the communication layer does not change math), so the
threaded gloo backend is used.

Iterations default to 150 per curve; set REPRO_FIG11_ITERS to change.
"""

import numpy as np
from scipy.signal import butter, filtfilt

from repro import nn
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.data import DataLoader, DistributedSampler, synthetic_mnist
from repro.models import ConvNet
from repro.optim import SGD
from repro.utils import manual_seed

from common import env_int, report

WORLD = 2
ITERS = env_int("REPRO_FIG11_ITERS", 150)
CADENCES = [1, 2, 4, 8]
DATASET = synthetic_mnist(num_samples=1024, noise=0.25, seed=11)


def _train_curve(total_batch: int, lr: float, cadence: int):
    per_rank = max(total_batch // WORLD, 1)

    def body(rank):
        manual_seed(0)
        model = ConvNet(num_classes=10, channels=4)
        ddp = DistributedDataParallel(model)
        optimizer = SGD(ddp.parameters(), lr=lr)
        loss_fn = nn.CrossEntropyLoss()
        sampler = DistributedSampler(DATASET, WORLD, rank, shuffle=True, seed=1)
        loader = DataLoader(DATASET, batch_size=per_rank, sampler=sampler, drop_last=True)
        losses = []
        iterator = iter(loader)
        epoch = 0
        for step in range(ITERS):
            try:
                x, y = next(iterator)
            except StopIteration:
                epoch += 1
                sampler.set_epoch(epoch)
                iterator = iter(loader)
                x, y = next(iterator)
            # As in the paper's §3.2.4 snippet, accumulated gradients
            # are NOT rescaled: skipping sync implicitly grows the
            # effective step size, which is exactly what requires "a
            # smaller learning rate" in the large-batch regime (Fig 11b).
            syncing = (step + 1) % cadence == 0
            if syncing:
                loss = loss_fn(ddp(x), y)
                loss.backward()
                optimizer.step()
                optimizer.zero_grad()
            else:
                with ddp.no_sync():
                    loss = loss_fn(ddp(x), y)
                    loss.backward()
            losses.append(loss.item())
        return losses

    curves = run_distributed(WORLD, body, backend="gloo", timeout=1800)
    return np.mean(curves, axis=0)


def _smooth(curve: np.ndarray) -> np.ndarray:
    """Order-3 low-pass filtfilt, as described for the paper's Fig. 11."""
    b, a = butter(3, 0.1)
    return filtfilt(b, a, curve)


def _run_regime(total_batch: int, lr: float):
    finals = {}
    rows = []
    for cadence in CADENCES:
        curve = _smooth(_train_curve(total_batch, lr, cadence))
        finals[cadence] = float(curve[-1])
        for checkpoint in np.linspace(0, len(curve) - 1, 6).astype(int):
            rows.append(
                (f"no_sync_{cadence}" if cadence > 1 else "every_iter",
                 int(checkpoint), round(float(curve[checkpoint]), 4))
            )
    return rows, finals


def bench_fig11a_small_batch_convergence(benchmark):
    rows, finals = benchmark.pedantic(
        _run_regime, args=(8, 0.02), rounds=1, iterations=1
    )
    report(
        "fig11a_batch8",
        f"Fig 11(a): smoothed training loss, batch=8 lr=0.02, {ITERS} iters",
        ["cadence", "iteration", "smoothed_loss"],
        rows,
    )
    print(f"final losses: {finals}")
    # negligible exacerbation: all cadences land close to the
    # every-iteration run (paper: "only leads to negligible exacerbation")
    assert max(finals.values()) - min(finals.values()) < 0.3


def bench_fig11b_large_batch_convergence(benchmark):
    rows, finals = benchmark.pedantic(
        _run_regime, args=(256, 0.06), rounds=1, iterations=1
    )
    report(
        "fig11b_batch256",
        f"Fig 11(b): smoothed training loss, batch=256 lr=0.06, {ITERS} iters",
        ["cadence", "iteration", "smoothed_loss"],
        rows,
    )
    print(f"final losses: {finals}")
    # the red-box effect: with large batches, aggressive skipping
    # clearly hurts the final training loss
    assert finals[8] > 3 * finals[1]
