"""Figure 9: scalability from 1 to 256 GPUs (shared entitlement).

Expected shapes: latency grows with scale; ResNet50/NCCL at 256 GPUs is
about 2x local training (real scaling factor ~128 of 256); Gloo slows
~3x for ResNet50 and ~6x+ for BERT; the NCCL runs show a sudden jump
from 128 to 256 GPUs (congested links in the shared entitlement).
"""

from repro.experiments import figures

from common import report


def bench_fig09_scalability(benchmark):
    results = benchmark(figures.fig09_scalability)
    rows = [
        (model, backend, world, latency)
        for (model, backend), latencies in results.items()
        for world, latency in zip(figures.SCALABILITY_WORLDS, latencies)
    ]
    report(
        "fig09_scalability",
        "Fig 9: median per-iteration latency vs number of GPUs (shared entitlement)",
        ["model", "backend", "gpus", "median_latency_s"],
        rows,
    )
    summary = [
        (model, backend, round(lat[-1] / lat[0], 2))
        for (model, backend), lat in results.items()
    ]
    report(
        "fig09_slowdowns",
        "Fig 9 summary: slowdown at 256 GPUs vs 1 GPU",
        ["model", "backend", "slowdown_256x"],
        summary,
    )
    slowdown = {(m, b): s for m, b, s in summary}
    assert 1.5 < slowdown[("resnet50", "nccl")] < 3.0
    assert 2.5 < slowdown[("resnet50", "gloo")] < 6.0
    assert slowdown[("bert", "gloo")] > 5.0
    resnet_nccl = results[("resnet50", "nccl")]
    jump = resnet_nccl[-1] / resnet_nccl[-2]
    previous_steps = [b / a for a, b in zip(resnet_nccl[2:-2], resnet_nccl[3:-1])]
    assert jump > max(previous_steps)  # the 128 -> 256 anomaly
