"""Figure 2(a,b): total AllReduce time vs parameters per operation.

60 M fp32 parameters communicated in slices of k parameters each, ops
launched asynchronously and awaited together, on 2 GPUs.  Expected
shapes: NCCL keeps improving through 20 M params/op (no clear
saturation); Gloo reaches its pinnacle near 500 K and flattens.
"""

from repro.experiments import figures

from common import report


def bench_fig02a_nccl_allreduce_sweep(benchmark):
    rows = benchmark(figures.fig02_allreduce_sweep, "nccl")
    report(
        "fig02a_nccl",
        "Fig 2(a): NCCL total AllReduce time for 60M params (2 GPUs, NVLink)",
        ["params_per_op", "total_seconds"],
        rows,
    )
    times = [t for _, t in rows]
    assert all(a > b for a, b in zip(times, times[1:])), "NCCL must keep improving"


def bench_fig02b_gloo_allreduce_sweep(benchmark):
    rows = benchmark(figures.fig02_allreduce_sweep, "gloo")
    report(
        "fig02b_gloo",
        "Fig 2(b): Gloo total AllReduce time for 60M params (2 ranks, CPU tensors)",
        ["params_per_op", "total_seconds"],
        rows,
    )
    by_size = dict(rows)
    # strong gains up to the ~500K knee, flat (within 2x) beyond
    assert by_size[10_000] > 3 * by_size[500_000]
    assert by_size[10_000_000] < 2 * by_size[500_000]
