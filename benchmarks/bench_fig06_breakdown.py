"""Figure 6: per-iteration latency breakdown at 32 GPUs.

Expected shape: backward dominates; communication is more than half the
backward delay and grows with model size; NCCL beats Gloo; overlap
yields double-digit-percent speedups everywhere (paper: 38.0% / 35.2%
NCCL, 26.8% / 21.5% Gloo).
"""

from repro.experiments import figures

from common import report


def bench_fig06_latency_breakdown(benchmark):
    rows = benchmark(figures.fig06_breakdown)
    report(
        "fig06_breakdown",
        "Fig 6: per-iteration latency breakdown, 32 GPUs "
        "(normalized: no-overlap total = 1)",
        ["model", "backend", "fwd", "bwd_comp", "comm_exposed", "opt",
         "overlap_total", "comm_total", "overlap_speedup"],
        rows,
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for row in rows:
        assert float(row[8].rstrip("%")) > 8.0  # overlap helps everywhere
    # Gloo's communication dominates more than NCCL's
    assert by_key[("resnet50", "gloo")][7] > by_key[("resnet50", "nccl")][7]
    assert by_key[("bert", "gloo")][7] > by_key[("bert", "nccl")][7]
    # communication share grows with model size (per backend)
    assert by_key[("bert", "nccl")][7] > by_key[("resnet50", "nccl")][7]
