"""Figure 6: per-iteration latency breakdown at 32 GPUs.

Expected shape: backward dominates; communication is more than half the
backward delay and grows with model size; NCCL beats Gloo; overlap
yields double-digit-percent speedups everywhere (paper: 38.0% / 35.2%
NCCL, 26.8% / 21.5% Gloo).

Two benches: the original *simulated* 32-GPU breakdown, and a
*measured* breakdown of a real 4-rank threaded run instrumented by
``repro.telemetry`` — the reducer's iteration recorder and the
Work-handle comm timestamps supply the same fwd/bwd/exposed-comm
decomposition the simulator predicts, plus a measured comm/compute
overlap ratio.
"""

import statistics

import numpy as np

from repro import nn, telemetry
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel
from repro.experiments import figures
from repro.optim import SGD
from repro.utils import manual_seed

from common import env_int, report


def bench_fig06_latency_breakdown(benchmark):
    rows = benchmark(figures.fig06_breakdown)
    report(
        "fig06_breakdown",
        "Fig 6: per-iteration latency breakdown, 32 GPUs "
        "(normalized: no-overlap total = 1)",
        ["model", "backend", "fwd", "bwd_comp", "comm_exposed", "opt",
         "overlap_total", "comm_total", "overlap_speedup"],
        rows,
    )
    by_key = {(r[0], r[1]): r for r in rows}
    for row in rows:
        assert float(row[8].rstrip("%")) > 8.0  # overlap helps everywhere
    # Gloo's communication dominates more than NCCL's
    assert by_key[("resnet50", "gloo")][7] > by_key[("resnet50", "nccl")][7]
    assert by_key[("bert", "gloo")][7] > by_key[("bert", "nccl")][7]
    # communication share grows with model size (per backend)
    assert by_key[("bert", "nccl")][7] > by_key[("resnet50", "nccl")][7]


# ----------------------------------------------------------------------
# measured variant: real 4-rank run through repro.telemetry
# ----------------------------------------------------------------------
MEASURED_WORLD = env_int("REPRO_FIG06_WORLD", 4)
MEASURED_ITERS = env_int("REPRO_FIG06_ITERS", 12)

#: (name, hidden width, hidden depth) — two sizes so the comm share's
#: growth with model size shows up in the measured numbers too.
MEASURED_MODELS = [("mlp-small", 192, 2), ("mlp-wide", 384, 3)]


def _measured_run(width: int, depth: int, overlap: bool):
    """Real threaded DDP training; per-rank phase stats via telemetry."""

    def body(rank):
        manual_seed(0)
        layers = [nn.Linear(64, width), nn.ReLU()]
        for _ in range(depth - 1):
            layers += [nn.Linear(width, width), nn.ReLU()]
        layers += [nn.Linear(width, 8)]
        ddp = DistributedDataParallel(
            nn.Sequential(*layers), bucket_cap_mb=0.25, overlap=overlap
        )
        opt = SGD(ddp.parameters(), lr=0.01)
        rng = np.random.default_rng(rank)
        loss_fn = nn.CrossEntropyLoss()
        per_iteration = []
        for _ in range(MEASURED_ITERS):
            inp = Tensor(rng.standard_normal((64, 64)))
            exp = rng.integers(0, 8, 64)
            opt.zero_grad()
            loss_fn(ddp(inp), exp).backward()
            opt.step()
            per_iteration.append(dict(ddp.reducer.last_iteration_stats))
        return per_iteration, ddp.ddp_stats()

    results = run_distributed(MEASURED_WORLD, body, backend="gloo", timeout=120)

    def phase_median(key):
        # median over post-warmup iterations, mean over ranks
        return statistics.mean(
            statistics.median(it[key] for it in per_iter[1:])
            for per_iter, _ in results
        )

    phases = {
        key: phase_median(key)
        for key in ("prepare_to_first_grad", "backward_compute",
                    "comm_exposed_wait", "total")
    }
    overlap_ratio = statistics.mean(
        stats["comm_compute_overlap_ratio"] for _, stats in results
    )
    return phases, overlap_ratio, results[0][1]


def _measured_rows():
    telemetry.enable()
    try:
        rows = []
        for name, width, depth in MEASURED_MODELS:
            with_overlap, ratio, stats = _measured_run(width, depth, overlap=True)
            without, _, _ = _measured_run(width, depth, overlap=False)
            speedup = 1.0 - with_overlap["total"] / without["total"]
            rows.append(
                (
                    name,
                    "gloo",
                    stats["num_buckets"],
                    round(with_overlap["prepare_to_first_grad"] * 1e3, 3),
                    round(with_overlap["backward_compute"] * 1e3, 3),
                    round(with_overlap["comm_exposed_wait"] * 1e3, 3),
                    round(with_overlap["total"] * 1e3, 3),
                    round(without["total"] * 1e3, 3),
                    round(ratio, 3),
                    f"{speedup * 100:.1f}%",
                )
            )
        return rows
    finally:
        telemetry.disable()
        telemetry.reset()


def bench_fig06_breakdown_measured(benchmark):
    """Fig. 6 analog *measured* from real 4-rank runs (not simulated).

    Caveat on the speedup column: ranks are threads sharing one GIL, so
    "overlapped" communication still contends with backward compute for
    the interpreter — the wall-clock overlap speedup hovers near zero
    here even though the measured overlap *ratio* (fraction of comm time
    hidden under backward) is substantial.  On real multi-device
    hardware the hidden fraction translates into the paper's
    double-digit speedups; in this harness the ratio is the meaningful
    measurement and the speedup column is noise.
    """
    rows = benchmark.pedantic(_measured_rows, rounds=1, iterations=1)
    report(
        "fig06_breakdown_measured",
        f"Fig 6 (measured): real {MEASURED_WORLD}-rank threaded run, ms/iter "
        "(phases from repro.telemetry; overlap run vs no-overlap run)",
        ["model", "backend", "buckets", "fwd+prep_ms", "bwd_comp_ms",
         "comm_exposed_ms", "overlap_total_ms", "no_overlap_total_ms",
         "overlap_ratio", "overlap_speedup"],
        rows,
    )
    for row in rows:
        assert row[2] >= 2              # multi-bucket, or overlap is moot
        assert row[6] > 0 and row[7] > 0
        assert 0.0 <= row[8] <= 1.0     # measured comm/compute overlap ratio
    # the largest model's backward is long enough that early buckets'
    # AllReduces genuinely overlap with compute (the small model's whole
    # backward can fit inside one GIL scheduling quantum, so its measured
    # overlap may legitimately round to zero).
    assert rows[-1][8] > 0.0
    # the wider model moves more gradient bytes, hence a longer iteration
    assert rows[1][6] > rows[0][6]
