"""Ablation: per-GPU memory, DDP replication vs ZeRO partitioning (§7).

The paper's related work positions ZeRO as trading training speed for
memory by partitioning parameters, gradients, and optimizer states
across DDP instances.  This bench quantifies the per-GPU footprint of
each stage for both evaluation models with Adam, plus the measured
optimizer-state sharding of this library's ZeroRedundancyOptimizer.
"""

from repro.simulation.memory import memory_report
from repro.simulation.models import bert_profile, resnet50_profile

from common import report


def bench_memory_partitioning(benchmark):
    def rows_for_all():
        rows = []
        for model in (resnet50_profile(), bert_profile()):
            for world in (8, 64, 256):
                for row in memory_report(model, world):
                    rows.append((model.name, world) + row)
        return rows

    rows = benchmark(rows_for_all)
    report(
        "ablation_memory",
        "Ablation: per-GPU memory (MB) by strategy (Adam, fp32, act≈2x params)",
        ["model", "gpus", "strategy", "params_MB", "grads_MB", "opt_MB",
         "act_MB", "total_MB"],
        rows,
    )
    by_key = {(r[0], r[1], r[2]): r[-1] for r in rows}
    # ZeRO-3 at 256 GPUs nearly eliminates replicated state for BERT
    assert by_key[("bert", 256, "zero3")] < by_key[("bert", 256, "ddp")] / 2
    # DDP footprint is world-size independent
    assert by_key[("bert", 8, "ddp")] == by_key[("bert", 256, "ddp")]
