"""Ablation: the paper's §3.2 design progression.

1. naive      — per-gradient AllReduce after the whole backward pass
                (§3.2.1: small tensors + no overlap);
2. bucketed   — 25 MB buckets, still launched after backward (§3.2.2);
3. overlapped — buckets launched from autograd hooks (§3.2.3).
"""

from repro.experiments import ablations

from common import report


def bench_ablation_design_progression(benchmark):
    rows = benchmark(ablations.design_progression)
    report(
        "ablation_naive",
        "Ablation: naive -> bucketed -> overlapped DDP (ResNet50)",
        ["backend", "gpus", "variant", "median_latency_s", "vs_naive"],
        rows,
    )
    by_key = {(r[0], r[1], r[2]): r[3] for r in rows}
    for backend in ("nccl", "gloo"):
        for world in (16, 32):
            naive = by_key[(backend, world, "naive")]
            bucketed = by_key[(backend, world, "bucketed")]
            overlapped = by_key[(backend, world, "overlapped")]
            assert bucketed < naive
            assert overlapped < bucketed
