#!/usr/bin/env python
"""Hot-path benchmark: seed vs. optimized gradient communication.

Measures the three layers the hot-path overhaul touched, and writes one
machine-readable ``BENCH_hotpath.json`` at the repo root:

1. **AllReduce data path** — the seed ring (index-array chunks, Python
   lambda reductions; embedded below verbatim as ``seed_allreduce_ring``)
   against the current vectorized/chunked ring, halving-doubling, and
   the naive all-to-all baseline, across world sizes and buffer sizes —
   the paper's Fig. 7/8 bucket-size axis.
2. **Chunk-size sweep** — the ``chunk_bytes`` pipelining knob on a
   large bucket.
3. **End-to-end DDP iteration** — ``gradient_as_bucket_view`` on/off
   and 1 vs. 2 communication streams, with the reducer's always-on
   phase telemetry (and zero-copy counters) attached so the JSON shows
   *where* the time went, not just how much there was.

Run ``python benchmarks/bench_hotpath.py --smoke`` for the CI-sized
version.  Exits non-zero if the optimized path loses to the seed path
or the naive path on the large-bucket AllReduce (the regression gate).
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common import emit_json, report  # noqa: E402

from repro import nn  # noqa: E402
from repro.autograd import Tensor  # noqa: E402
from repro.comm import algorithms as alg  # noqa: E402
from repro.comm import run_distributed  # noqa: E402
from repro.comm.transport import TransportHub  # noqa: E402
from repro.core import DistributedDataParallel  # noqa: E402
from repro.optim import SGD  # noqa: E402
from repro.utils import manual_seed  # noqa: E402

MB = 1024 * 1024


# ----------------------------------------------------------------------
# The seed data path, embedded as the labeled baseline: index-array
# chunking (np.array_split of an arange → fancy-indexing gathers) and a
# Python lambda reduction that allocates a fresh array per step.
# ----------------------------------------------------------------------
def seed_allreduce_ring(hub, ranks, me, buffer, op="sum", tag="ring", timeout=None):
    """The pre-overhaul ring AllReduce, verbatim from the seed tree."""
    fn = {"sum": lambda a, b: a + b}[op]
    world = len(ranks)
    if world == 1:
        return
    flat = buffer.reshape(-1)
    chunks = np.array_split(np.arange(flat.size), world)
    right = ranks[(me + 1) % world]
    left = ranks[(me - 1) % world]
    for step in range(world - 1):
        send_idx = (me - step) % world
        recv_idx = (me - step - 1) % world
        hub.send(ranks[me], right, (tag, "rs", step), flat[chunks[send_idx]].copy())
        incoming = hub.recv(ranks[me], left, (tag, "rs", step), timeout)
        flat[chunks[recv_idx]] = fn(flat[chunks[recv_idx]], incoming)
    for step in range(world - 1):
        send_idx = (me - step + 1) % world
        recv_idx = (me - step) % world
        hub.send(ranks[me], right, (tag, "ag", step), flat[chunks[send_idx]].copy())
        incoming = hub.recv(ranks[me], left, (tag, "ag", step), timeout)
        flat[chunks[recv_idx]] = incoming
    buffer.reshape(-1)[...] = flat


def time_allreduce(fn, world, nelems, iters, chunk_bytes=None, check_against=None):
    """Median over ``iters`` of one collective's max-across-ranks wall time.

    Every rank thread synchronizes on a barrier, runs the collective
    ``iters`` times (distinct tags), and reports per-iteration wall
    time; the slowest rank defines each iteration (collectives finish
    together or not at all).
    """
    hub = TransportHub(world, default_timeout=60)
    rng = np.random.default_rng(7)
    inputs = [rng.standard_normal(nelems) for _ in range(world)]
    expected = np.sum(inputs, axis=0)
    per_rank_times = [None] * world
    outputs = [None] * world
    barrier = threading.Barrier(world)
    ranks = list(range(world))

    def body(rank):
        buf = inputs[rank].copy()
        times = []
        for i in range(iters):
            barrier.wait()
            t0 = time.perf_counter()
            if chunk_bytes is None:
                fn(hub, ranks, rank, buf, "sum", ("bench", i), 60.0)
            else:
                fn(hub, ranks, rank, buf, "sum", ("bench", i), 60.0, chunk_bytes)
            times.append(time.perf_counter() - t0)
            if i < iters - 1:
                buf[...] = inputs[rank]
        per_rank_times[rank] = times
        outputs[rank] = buf

    threads = [threading.Thread(target=body, args=(r,), daemon=True) for r in ranks]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    if any(t.is_alive() for t in threads):
        raise TimeoutError("benchmark rank threads did not finish")
    for rank in ranks:
        np.testing.assert_allclose(outputs[rank], expected, rtol=1e-9)
    worst_per_iter = [max(ts[i] for ts in per_rank_times) for i in range(iters)]
    return statistics.median(worst_per_iter)


def bench_allreduce_sweep(worlds, sizes_mb, iters):
    """Seed ring vs. optimized ring/halving-doubling vs. naive."""
    rows = []
    for world in worlds:
        for size_mb in sizes_mb:
            nelems = int(size_mb * MB // 8)
            seed_s = time_allreduce(seed_allreduce_ring, world, nelems, iters)
            ring_s = time_allreduce(alg.allreduce_ring, world, nelems, iters)
            hd_s = time_allreduce(alg.allreduce_halving_doubling, world, nelems, iters)
            naive_s = time_allreduce(alg.allreduce_naive, world, nelems, iters)
            rows.append(
                {
                    "world": world,
                    "size_mb": size_mb,
                    "elements": nelems,
                    "seed_ring_s": seed_s,
                    "ring_s": ring_s,
                    "halving_doubling_s": hd_s,
                    "naive_s": naive_s,
                    "ring_speedup_vs_seed": seed_s / ring_s if ring_s else 0.0,
                    "ring_speedup_vs_naive": naive_s / ring_s if ring_s else 0.0,
                }
            )
    return rows


def bench_chunk_sweep(world, size_mb, chunk_kbs, iters):
    """The chunk_bytes pipelining knob on one large bucket."""
    nelems = int(size_mb * MB // 8)
    rows = []
    for chunk_kb in chunk_kbs:
        elapsed = time_allreduce(
            alg.allreduce_ring, world, nelems, iters, chunk_bytes=chunk_kb * 1024
        )
        rows.append({"chunk_kb": chunk_kb, "world": world, "size_mb": size_mb,
                     "ring_s": elapsed})
    return rows


def bench_ddp_iteration(hidden, iters, configs):
    """Full DDP training iterations under different data-path configs.

    Each config runs 2 ranks over gloo; reports the median iteration
    wall time (after one warmup), the reducer's zero-copy counters, and
    the always-on phase breakdown of the last iteration (the telemetry
    evidence of where time went).
    """
    rng = np.random.default_rng(3)
    X = rng.standard_normal((8, hidden))
    Y = rng.integers(0, 8, 8)
    results = []
    for config in configs:
        view = config["gradient_as_bucket_view"]
        streams = config["num_streams"]
        cap_mb = config["bucket_cap_mb"]

        def body(rank):
            manual_seed(0)
            model = nn.Sequential(
                nn.Linear(hidden, hidden),
                nn.ReLU(),
                nn.Linear(hidden, hidden),
                nn.ReLU(),
                nn.Linear(hidden, 8),
            )
            ddp = DistributedDataParallel(
                model,
                bucket_cap_mb=cap_mb,
                gradient_as_bucket_view=view,
            )
            opt = SGD(ddp.parameters(), lr=0.01)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            times = []
            for _ in range(iters + 1):
                t0 = time.perf_counter()
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
                times.append(time.perf_counter() - t0)
            stats = ddp.ddp_stats()
            return {
                "iter_s": statistics.median(times[1:]),  # drop warmup
                "zero_copy_hits": stats["zero_copy_hits"],
                "grad_copy_count": stats["grad_copy_count"],
                "layout_allocations": stats["layout_allocations"],
                "num_buckets": stats["num_buckets"],
                "overlap_ratio": stats["comm_compute_overlap_ratio"],
                "phases": dict(ddp.reducer.recorder.last_detail.get("phases", {})),
            }

        per_rank = run_distributed(2, body, backend="gloo", timeout=120.0,
                                   num_streams=streams)
        worst = max(per_rank, key=lambda r: r["iter_s"])
        results.append(
            {
                "mode": "view" if view else "copy",
                "num_streams": streams,
                "bucket_cap_mb": cap_mb,
                **worst,
            }
        )
    return results


def bench_sampler_overhead(hidden, iters, interval=0.1):
    """Iteration-time cost of the observatory's background sampler.

    Runs the same 2-rank DDP loop twice with telemetry enabled — once
    bare, once with a :class:`MetricsSampler` ticking at ``interval`` —
    and reports the relative median-iteration overhead.  The sampler
    runs on its own daemon thread, so at the default 100 ms interval the
    overhead should be noise (< 2%); the exit gate is deliberately
    looser so scheduler jitter on loaded CI runners can't flake it.
    """
    from repro import telemetry
    from repro.telemetry.observatory import MetricsSampler

    def run_once(with_sampler):
        sampler = MetricsSampler(interval=interval).start() if with_sampler else None

        def body(rank):
            manual_seed(0)
            model = nn.Sequential(
                nn.Linear(hidden, hidden), nn.ReLU(), nn.Linear(hidden, 8)
            )
            ddp = DistributedDataParallel(model, bucket_cap_mb=1.0)
            opt = SGD(ddp.parameters(), lr=0.01)
            loss_fn = nn.CrossEntropyLoss()
            rng = np.random.default_rng(rank)
            X = rng.standard_normal((4, hidden))
            Y = rng.integers(0, 8, 4)
            times = []
            for _ in range(iters + 1):
                t0 = time.perf_counter()
                opt.zero_grad()
                loss_fn(ddp(Tensor(X)), Y).backward()
                opt.step()
                times.append(time.perf_counter() - t0)
            return statistics.median(times[1:])

        per_rank = run_distributed(2, body, backend="gloo", timeout=120.0)
        if sampler is not None:
            sampler.stop()
        return max(per_rank)

    telemetry.enable()
    try:
        base_s = run_once(False)
        sampled_s = run_once(True)
    finally:
        telemetry.disable()
        telemetry.reset()
    overhead_pct = 100.0 * (sampled_s - base_s) / base_s if base_s > 0 else 0.0
    return {
        "interval_s": interval,
        "iters": iters,
        "base_iter_s": base_s,
        "sampled_iter_s": sampled_s,
        "overhead_pct": overhead_pct,
    }


def bench_health_overhead(hidden, iters):
    """Iteration-time cost of the comm health engine's accounting.

    Telemetry stays enabled for both runs; only the health kill switch
    flips.  The delta isolates what the per-collective efficiency
    accounting (stall bracketing, busbw/utilization observations, event
    log appends) adds on top of spans — the acceptance bound is < 5%.

    The schedule is ABBA (off, on, on, off) with each arm averaged:
    background load on a shared runner drifts over the measurement
    window, and a naive A-then-B comparison silently charges the drift
    to whichever arm ran second.  ABBA cancels linear drift exactly.
    """
    from repro import telemetry
    from repro.telemetry.health import accounting

    def run_once(with_health):
        accounting.set_enabled(with_health)

        def body(rank):
            manual_seed(0)
            model = nn.Sequential(
                nn.Linear(hidden, hidden), nn.ReLU(), nn.Linear(hidden, 8)
            )
            ddp = DistributedDataParallel(model, bucket_cap_mb=1.0)
            opt = SGD(ddp.parameters(), lr=0.01)
            loss_fn = nn.CrossEntropyLoss()
            rng = np.random.default_rng(rank)
            X = rng.standard_normal((4, hidden))
            Y = rng.integers(0, 8, 4)
            # One warm-up, then the timed block as one wall-clock span:
            # per-iteration medians are too coarse for a percent-level
            # delta at millisecond iteration times.
            opt.zero_grad()
            loss_fn(ddp(Tensor(X)), Y).backward()
            opt.step()
            t0 = time.perf_counter()
            for _ in range(iters):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X)), Y).backward()
                opt.step()
            return (time.perf_counter() - t0) / iters

        per_rank = run_distributed(2, body, backend="gloo", timeout=120.0)
        return max(per_rank)

    iters = max(iters, 50)
    telemetry.enable()
    try:
        base_a = run_once(False)
        health_a = run_once(True)
        health_b = run_once(True)
        base_b = run_once(False)
    finally:
        accounting.set_enabled(True)
        telemetry.disable()
        telemetry.reset()
    base_s = (base_a + base_b) / 2.0
    health_s = (health_a + health_b) / 2.0
    overhead_pct = 100.0 * (health_s - base_s) / base_s if base_s > 0 else 0.0
    return {
        "iters": iters,
        "schedule": "ABBA",
        "base_iter_s": base_s,
        "health_iter_s": health_s,
        "overhead_pct": overhead_pct,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer worlds/sizes/iters")
    parser.add_argument("--iters", type=int, default=None,
                        help="timed repetitions per data point")
    parser.add_argument("--out", default=None, help="output JSON path override")
    args = parser.parse_args(argv)

    if args.smoke:
        worlds, sizes_mb = [2, 4], [1, 25]
        chunk_kbs = [64, 1024, 8192]
        iters = args.iters or 3
        hidden, ddp_iters = 256, 4
    else:
        worlds, sizes_mb = [2, 4, 8], [1, 8, 25, 50]
        chunk_kbs = [16, 64, 256, 1024, 4096, 8192, 32768]
        iters = args.iters or 5
        hidden, ddp_iters = 512, 8

    print(f"[bench_hotpath] allreduce sweep: worlds={worlds} sizes_mb={sizes_mb}")
    allreduce_rows = bench_allreduce_sweep(worlds, sizes_mb, iters)
    report(
        "hotpath_allreduce",
        "AllReduce: seed ring vs optimized (seconds, worst rank, median)",
        ["world", "MB", "seed_ring", "ring", "halving_dbl", "naive", "speedup_vs_seed"],
        [
            [r["world"], r["size_mb"], r["seed_ring_s"], r["ring_s"],
             r["halving_doubling_s"], r["naive_s"], r["ring_speedup_vs_seed"]]
            for r in allreduce_rows
        ],
    )

    print("[bench_hotpath] chunk-size sweep")
    chunk_world = max(worlds)
    chunk_size_mb = max(sizes_mb)
    chunk_rows = bench_chunk_sweep(chunk_world, chunk_size_mb, chunk_kbs, iters)
    report(
        "hotpath_chunks",
        f"Ring AllReduce {chunk_size_mb} MB, world {chunk_world}: chunk size sweep",
        ["chunk_kb", "seconds"],
        [[r["chunk_kb"], r["ring_s"]] for r in chunk_rows],
    )

    print("[bench_hotpath] DDP iteration: copy vs view, 1 vs 2 streams")
    ddp_rows = bench_ddp_iteration(
        hidden,
        ddp_iters,
        [
            {"gradient_as_bucket_view": False, "num_streams": 1, "bucket_cap_mb": 1.0},
            {"gradient_as_bucket_view": True, "num_streams": 1, "bucket_cap_mb": 1.0},
            {"gradient_as_bucket_view": True, "num_streams": 2, "bucket_cap_mb": 1.0},
        ],
    )
    report(
        "hotpath_ddp",
        f"DDP iteration (2 ranks, 3-layer MLP hidden={hidden})",
        ["mode", "streams", "iter_ms", "zero_copy", "grad_copies", "overlap"],
        [
            [r["mode"], r["num_streams"], r["iter_s"] * 1e3, r["zero_copy_hits"],
             r["grad_copy_count"], r["overlap_ratio"]]
            for r in ddp_rows
        ],
    )

    print("[bench_hotpath] observatory sampler overhead at 100 ms")
    sampler_row = bench_sampler_overhead(hidden, ddp_iters * 4)
    report(
        "hotpath_sampler",
        "MetricsSampler overhead (2 ranks, median iteration)",
        ["interval_s", "base_ms", "sampled_ms", "overhead_pct"],
        [[sampler_row["interval_s"], sampler_row["base_iter_s"] * 1e3,
          sampler_row["sampled_iter_s"] * 1e3, sampler_row["overhead_pct"]]],
    )

    print("[bench_hotpath] comm health accounting overhead")
    health_row = bench_health_overhead(hidden, ddp_iters * 4)
    report(
        "hotpath_health",
        "Health accounting overhead (2 ranks, median iteration)",
        ["base_ms", "health_ms", "overhead_pct"],
        [[health_row["base_iter_s"] * 1e3, health_row["health_iter_s"] * 1e3,
          health_row["overhead_pct"]]],
    )

    # Regression gates on the largest (≥25 MB) bucket case.
    large = [r for r in allreduce_rows if r["size_mb"] >= 25] or allreduce_rows
    gate = max(large, key=lambda r: (r["size_mb"], r["world"]))
    view_row = next(r for r in ddp_rows if r["mode"] == "view" and r["num_streams"] == 1)
    checks = {
        "large_bucket_case": {"world": gate["world"], "size_mb": gate["size_mb"]},
        "optimized_beats_seed_large_bucket": gate["ring_s"] < gate["seed_ring_s"],
        "optimized_beats_naive_large_bucket": gate["ring_s"] < gate["naive_s"],
        "large_bucket_speedup_vs_seed": gate["ring_speedup_vs_seed"],
        "large_bucket_speedup_vs_naive": gate["ring_speedup_vs_naive"],
        "ddp_view_mode_zero_copies": view_row["grad_copy_count"] == 0
        and view_row["zero_copy_hits"] > 0,
        "sampler_overhead_pct": sampler_row["overhead_pct"],
        # The measured number documents the <2% claim; the hard gate is
        # an order of magnitude looser so CI scheduler noise can't trip it.
        "sampler_overhead_sane": sampler_row["overhead_pct"] < 10.0,
        "health_overhead_pct": health_row["overhead_pct"],
        # The health-engine acceptance bound: accounting adds < 5% to
        # the median DDP iteration.
        "health_overhead_sane": health_row["overhead_pct"] < 5.0,
    }

    emit_json(
        "hotpath",
        {
            "smoke": args.smoke,
            "iters": iters,
            "allreduce": allreduce_rows,
            "chunk_sweep": chunk_rows,
            "ddp": ddp_rows,
            "sampler_overhead": sampler_row,
            "health_overhead": health_row,
            "checks": checks,
        },
        path=args.out,
    )

    failed = [
        name
        for name in (
            "optimized_beats_seed_large_bucket",
            "optimized_beats_naive_large_bucket",
            "ddp_view_mode_zero_copies",
            "sampler_overhead_sane",
            "health_overhead_sane",
        )
        if not checks[name]
    ]
    if failed:
        print(f"[bench_hotpath] FAILED checks: {failed}")
        return 1
    print(
        f"[bench_hotpath] OK — ring beats seed by "
        f"{checks['large_bucket_speedup_vs_seed']:.2f}x and naive by "
        f"{checks['large_bucket_speedup_vs_naive']:.2f}x on the "
        f"{gate['size_mb']} MB / world {gate['world']} case"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
