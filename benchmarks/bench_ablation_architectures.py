"""Ablation: gradient-exchange architectures (paper §2.3, §7).

Compares the per-iteration gradient-exchange cost of:

* flat ring AllReduce (DDP's default path),
* hierarchical AllReduce (BlueConnect/Blink-style decomposition along
  the network hierarchy, paper §7),
* a synchronous parameter server (every gradient crosses one server
  link twice — the §2.3 contrast).

Expected shape: the parameter server's server-link bottleneck scales
linearly with worker count while AllReduce's per-rank volume is bounded
by 2(p−1)/p ≈ 2 — so the PS gap widens with scale.  On this cluster
model the hierarchical variant tracks the flat ring (same inter-server
bottleneck) and wins mainly on hop latency.
"""

import threading

import numpy as np

from repro.comm import algorithms as alg
from repro.comm.transport import TransportHub
from repro.experiments import ablations

from common import report


def bench_architecture_comparison(benchmark):
    rows = benchmark(ablations.architecture_comparison)
    report(
        "ablation_architectures",
        "Ablation: gradient exchange cost (ResNet50, 102MB grads, nccl model)",
        ["workers", "flat_ring_s", "hierarchical_s", "param_server_s", "ps_vs_ring"],
        rows,
    )
    # the PS bottleneck widens with scale
    ratios = [r[3] / r[1] for r in rows]
    assert ratios[-1] > ratios[0]
    assert rows[-1][3] > rows[-1][1] * 2  # PS clearly loses at 32 workers


def bench_hierarchical_allreduce_correctness(benchmark):
    """The threaded hierarchical algorithm computes exact sums."""

    def run():
        world = 12  # 2 full groups of 8? no: 8 + 4 trailing group
        rng = np.random.default_rng(0)
        inputs = [rng.standard_normal(37) for _ in range(world)]
        expected = np.sum(inputs, axis=0)
        hub = TransportHub(world, default_timeout=10)
        outputs = [None] * world
        errors = []

        def body(rank):
            try:
                buf = inputs[rank].copy()
                alg.allreduce_hierarchical(
                    hub, list(range(world)), rank, buf, "sum", tag="h", group_size=4
                )
                outputs[rank] = buf
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=body, args=(r,)) for r in range(world)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
        assert not errors, errors
        return outputs, expected

    outputs, expected = benchmark.pedantic(run, rounds=1, iterations=1)
    for out in outputs:
        assert np.allclose(out, expected)
