"""Table 1: distributed training solutions by scheme.

Regenerates the paper's categorization of 15 systems across the six
schemes (Synchronous/Asynchronous update, Cross/Intra-iteration,
Data/Model parallel).
"""

from repro.core.taxonomy import TRAINING_SOLUTIONS, render_table1, solutions_supporting

from common import save_text


def bench_table1_taxonomy(benchmark):
    text = benchmark(render_table1)
    save_text("table1_taxonomy", text)
    assert len(TRAINING_SOLUTIONS) == 15
    assert "PT DDP" in solutions_supporting("S")
    assert "PT DDP" in solutions_supporting("I")
    assert "PT DDP" in solutions_supporting("D")
    assert "PT DDP" not in solutions_supporting("M")
