#!/usr/bin/env python
"""Ablation: gradient compression, measured (paper §6.2.3 future work).

Sweeps every compression hook family × {plain, error-feedback} through a
real 2-rank threaded DDP training run and *measures* — wire bytes per
iteration from the transport hub's byte accounting, median iteration
wall time, and convergence (first/final loss) — instead of asserting
projections.  The analytic wire-volume projection for ResNet50/BERT at
32 GPUs (``repro.experiments.ablations``) rides along for context, and
the measured fp16 wire ratio is cross-checked against the theoretical
``compression_ratio`` table.

Writes one machine-readable ``BENCH_compression.json`` at the repo root
(``REPRO_BENCH_BASELINE=1`` redirects it to
``benchmarks/baselines/compression.json``, the perf-guard reference).
Run ``python benchmarks/bench_ablation_compression.py --smoke`` for the
CI-sized version; exits non-zero if a compressed hook fails to shrink
the wire, or an error-feedback run fails to converge.

Also collectable under pytest-benchmark
(``pytest benchmarks/bench_ablation_compression.py --benchmark-only``).
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common import emit_json, report  # noqa: E402

from repro import nn  # noqa: E402
from repro.autograd import Tensor  # noqa: E402
from repro.comm import run_distributed  # noqa: E402
from repro.core import DistributedDataParallel, comm_hooks  # noqa: E402
from repro.experiments import ablations  # noqa: E402
from repro.optim import SGD  # noqa: E402
from repro.utils import manual_seed  # noqa: E402

TOPK_DENSITY = 0.05
POWERSGD_RANK = 2

#: hook family × variant → factory.  ``mode`` "ef" carries the rank's
#: compression error into its next contribution; "plain" drops it.
#: onebit has error feedback baked into the algorithm (no plain form),
#: and the dense hooks (native reducer path, allreduce_hook) are exact,
#: so error feedback is meaningless for them.
HOOK_MATRIX = [
    ("native", "plain", None),
    ("allreduce", "plain", lambda: comm_hooks.allreduce_hook),
    ("fp16", "plain", lambda: comm_hooks.Fp16Hook(use_error_feedback=False)),
    ("fp16", "ef", lambda: comm_hooks.Fp16Hook(use_error_feedback=True)),
    ("quantize8", "plain", lambda: comm_hooks.Quantize8Hook(use_error_feedback=False)),
    ("quantize8", "ef", lambda: comm_hooks.Quantize8Hook(use_error_feedback=True)),
    ("onebit", "ef", lambda: comm_hooks.OneBitSGDHook()),
    ("topk", "plain",
     lambda: comm_hooks.TopKHook(density=TOPK_DENSITY, use_error_feedback=False)),
    ("topk", "ef",
     lambda: comm_hooks.TopKHook(density=TOPK_DENSITY, use_error_feedback=True)),
    ("powersgd", "plain",
     lambda: comm_hooks.PowerSGDHook(rank=POWERSGD_RANK, use_error_feedback=False)),
    ("powersgd", "ef",
     lambda: comm_hooks.PowerSGDHook(rank=POWERSGD_RANK, use_error_feedback=True)),
]


def measure_hook(hook_factory, hidden, iters, X, Y):
    """One 2-rank training run; returns measured metrics (worst rank).

    Wire bytes come from the hub's per-rank send accounting —
    ``bytes_sent[rank]`` is only written by that rank's own sends, so a
    per-rank delta over the timed loop is race-free — divided by the
    iteration count for a per-iteration figure.
    """

    def body(rank):
        manual_seed(0)
        model = nn.Sequential(
            nn.Linear(X.shape[1], hidden), nn.ReLU(), nn.Linear(hidden, 8)
        )
        ddp = DistributedDataParallel(
            model, comm_hook=hook_factory() if hook_factory else None
        )
        opt = SGD(ddp.parameters(), lr=0.05)
        loss_fn = nn.CrossEntropyLoss()
        hub = ddp.process_group.hub
        shard = slice(rank * 4, (rank + 1) * 4)

        # warmup iteration: bucket layout allocation, hook state init
        opt.zero_grad()
        loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
        opt.step()

        bytes_before = hub.bytes_sent[rank]
        times, losses = [], []
        for _ in range(iters):
            t0 = time.perf_counter()
            opt.zero_grad()
            loss = loss_fn(ddp(Tensor(X[shard])), Y[shard])
            loss.backward()
            opt.step()
            times.append(time.perf_counter() - t0)
            losses.append(loss.item())
        wire = (hub.bytes_sent[rank] - bytes_before) / iters
        grads = {n: p.grad.data.copy() for n, p in model.named_parameters()}
        return {
            "wire_bytes_per_iter": wire,
            "iter_s": statistics.median(times),
            "first_loss": losses[0],
            "final_loss": losses[-1],
            "grads": grads,
        }

    per_rank = run_distributed(2, body, backend="gloo", timeout=120.0)
    # Compression must never desynchronize the replicas: both ranks see
    # the identical decompressed gradient.
    for name in per_rank[0]["grads"]:
        np.testing.assert_allclose(
            per_rank[0]["grads"][name], per_rank[1]["grads"][name], atol=1e-9
        )
    worst = max(per_rank, key=lambda r: r["iter_s"])
    return {k: v for k, v in worst.items() if k != "grads"}


def run_sweep(hidden, iters):
    """The full hook × error-feedback matrix, measured."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((8, 16))
    Y = rng.integers(0, 8, 8)
    rows = []
    for name, mode, factory in HOOK_MATRIX:
        measured = measure_hook(factory, hidden, iters, X, Y)
        rows.append({"hook": name, "mode": mode, **measured})
        print(
            f"[bench_compression] {name}/{mode}: "
            f"{measured['wire_bytes_per_iter'] / 1024:.1f} KiB/iter, "
            f"{measured['iter_s'] * 1e3:.2f} ms/iter, "
            f"loss {measured['first_loss']:.3f} -> {measured['final_loss']:.3f}"
        )
    return rows


def gate_checks(rows):
    """The exit gates: compression must compress, EF must converge."""
    by_key = {(r["hook"], r["mode"]): r for r in rows}
    dense = by_key[("native", "plain")]["wire_bytes_per_iter"]
    fp16 = by_key[("fp16", "ef")]["wire_bytes_per_iter"]
    checks = {
        # the hook overlay itself must not inflate the wire
        "allreduce_hook_matches_native_wire":
            by_key[("allreduce", "plain")]["wire_bytes_per_iter"] <= dense * 1.01,
        "fp16_shrinks_wire": fp16 < dense,
        "onebit_beats_fp16": by_key[("onebit", "ef")]["wire_bytes_per_iter"] < fp16,
        "topk_beats_fp16": by_key[("topk", "ef")]["wire_bytes_per_iter"] < fp16,
        "powersgd_beats_fp16":
            by_key[("powersgd", "ef")]["wire_bytes_per_iter"] < fp16,
        # measured fp16 ratio vs the theoretical table (loose: framing
        # and the collective's 2(p-1)/p volume factor wash out exactness)
        "fp16_measured_ratio": fp16 / dense,
        "fp16_ratio_near_theory":
            abs(fp16 / dense - comm_hooks.compression_ratio("fp16", 8)) < 0.15,
        # every error-feedback (or exact) run converges
        "all_ef_runs_converge": all(
            r["final_loss"] < r["first_loss"]
            for r in rows
            if r["mode"] == "ef" or r["hook"] in ("native", "allreduce")
        ),
        # error feedback never costs wire volume vs its plain sibling
        "ef_wire_matches_plain": all(
            abs(by_key[(h, "ef")]["wire_bytes_per_iter"]
                - by_key[(h, "plain")]["wire_bytes_per_iter"])
            <= by_key[(h, "plain")]["wire_bytes_per_iter"] * 0.05
            for h in ("fp16", "quantize8", "topk", "powersgd")
        ),
    }
    return checks


def projection_rows():
    """Analytic ResNet50/BERT @ 32 GPUs projection (context table)."""
    return ablations.compression_projection()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: smaller model, fewer iterations")
    parser.add_argument("--iters", type=int, default=None,
                        help="timed iterations per hook config")
    parser.add_argument("--out", default=None, help="output JSON path override")
    args = parser.parse_args(argv)

    hidden = 32 if args.smoke else 128
    iters = args.iters or (20 if args.smoke else 60)

    print(f"[bench_compression] measured sweep: hidden={hidden} iters={iters}")
    rows = run_sweep(hidden, iters)
    report(
        "ablation_compression_measured",
        "Ablation: measured wire bytes, iteration time, convergence per hook "
        "(2 ranks, threaded backend)",
        ["hook", "mode", "KiB_per_iter", "iter_ms", "first_loss", "final_loss"],
        [
            [r["hook"], r["mode"], r["wire_bytes_per_iter"] / 1024,
             r["iter_s"] * 1e3, r["first_loss"], r["final_loss"]]
            for r in rows
        ],
    )

    projections = projection_rows()
    report(
        "ablation_compression",
        "Ablation: communication volume & projected AllReduce time per hook (32 GPUs)",
        ["model", "hook", "wire_MB", "allreduce_s", "volume_ratio"],
        projections,
    )

    checks = gate_checks(rows)
    emit_json(
        "compression",
        {
            "smoke": args.smoke,
            "iters": iters,
            "hidden": hidden,
            "topk_density": TOPK_DENSITY,
            "powersgd_rank": POWERSGD_RANK,
            "measured": rows,
            "checks": checks,
        },
        path=args.out,
    )

    failed = [name for name, ok in checks.items()
              if isinstance(ok, bool) and not ok]
    if failed:
        print(f"[bench_compression] FAILED checks: {failed}")
        return 1
    dense = next(r for r in rows if r["hook"] == "native")
    best = min(rows, key=lambda r: r["wire_bytes_per_iter"])
    print(
        f"[bench_compression] OK — best wire ratio "
        f"{best['wire_bytes_per_iter'] / dense['wire_bytes_per_iter']:.3f} "
        f"({best['hook']}/{best['mode']}); every error-feedback run converged"
    )
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------
def bench_compression_measured_sweep(benchmark):
    rows = benchmark.pedantic(lambda: run_sweep(32, 20), rounds=1, iterations=1)
    checks = gate_checks(rows)
    assert all(ok for ok in checks.values() if isinstance(ok, bool)), checks


def bench_compression_wire_volume_projection(benchmark):
    rows = benchmark(projection_rows)
    by_key = {(r[0], r[1]): r[3] for r in rows}
    assert by_key[("bert", "onebit_int8")] < by_key[("bert", "fp32_allreduce")] / 2


if __name__ == "__main__":
    sys.exit(main())
