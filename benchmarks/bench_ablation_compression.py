"""Ablation: gradient compression (paper §6.2.3 future work).

Projects the per-iteration communication volume and latency for each
communication hook on ResNet50 and BERT at 32 GPUs, and cross-checks
the wire-volume ratios against the threaded implementation's byte
accounting.
"""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.core import DistributedDataParallel, comm_hooks
from repro.experiments import ablations
from repro.utils import manual_seed

from common import report


def bench_compression_wire_volume_projection(benchmark):
    rows = benchmark(ablations.compression_projection)
    report(
        "ablation_compression",
        "Ablation: communication volume & projected AllReduce time per hook (32 GPUs)",
        ["model", "hook", "wire_MB", "allreduce_s", "volume_ratio"],
        rows,
    )
    by_key = {(r[0], r[1]): r[3] for r in rows}
    assert by_key[("bert", "onebit_int8")] < by_key[("bert", "fp32_allreduce")] / 2


def bench_compression_measured_bytes(benchmark):
    """Measured wire bytes on the threaded backend for a real model."""
    rng = np.random.default_rng(0)
    X, Y = rng.standard_normal((8, 6)), rng.integers(0, 4, 8)

    def measure():
        volumes = {}
        for name, hook_factory in [
            ("fp32_allreduce", lambda: None),
            ("fp16", lambda: comm_hooks.fp16_compress_hook),
            ("onebit_int8", lambda: comm_hooks.OneBitSGDHook()),
        ]:
            def body(rank, hook_factory=hook_factory):
                manual_seed(0)
                model = nn.Sequential(nn.Linear(6, 64), nn.ReLU(), nn.Linear(64, 4))
                ddp = DistributedDataParallel(model, comm_hook=hook_factory())
                hub = ddp.process_group.hub
                # bytes_sent[rank] is only written by this rank's own
                # sends, so a per-rank delta is race-free.
                baseline = hub.bytes_sent[rank]
                shard = slice(rank * 4, (rank + 1) * 4)
                nn.CrossEntropyLoss()(ddp(Tensor(X[shard])), Y[shard]).backward()
                return hub.bytes_sent[rank] - baseline

            volumes[name] = run_distributed(2, body, backend="gloo")[0]
        return volumes

    volumes = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(name, nbytes) for name, nbytes in volumes.items()]
    report(
        "ablation_compression_measured",
        "Ablation: measured gradient wire bytes per iteration (threaded backend)",
        ["hook", "bytes_sent_rank0"],
        rows,
    )
    assert volumes["fp16"] < volumes["fp32_allreduce"]
    assert volumes["onebit_int8"] < volumes["fp16"]
