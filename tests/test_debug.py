"""Debug layer: levels, flight recorder, desync diagnosis, watchdog,
monitored barrier, and the shutdown-unwedging regression."""

import json
import time

import numpy as np
import pytest

from repro.comm import (
    CollectiveTimeoutError,
    get_context,
    monitored_barrier,
)
from repro.comm.process_group import Work
from repro.core import DistributedDataParallel
from repro.core.bucket import compute_bucket_assignment
from repro.core.reducer import Reducer, ReducerError
from repro.debug import (
    FlightRecorder,
    all_recorders,
    build_desync_report,
    clear_recorders,
    collective_context,
    current_collective_context,
    describe_fingerprint,
    diff_fingerprints,
    dump_all,
    dump_json,
    fingerprint,
    get_debug_level,
    render_cross_rank,
    render_mismatch,
    set_debug_level,
)
from repro.nn.module import Parameter
from repro.utils import manual_seed

from conftest import run_world, small_classifier


@pytest.fixture
def debug_level():
    """Set the debug level for one test; restore OFF-state afterwards."""
    previous = get_debug_level()
    clear_recorders()
    yield set_debug_level
    set_debug_level(previous)
    clear_recorders()


class TestLevels:
    def test_parse_names_and_ints(self, debug_level):
        assert debug_level("info") == 1
        assert debug_level("DETAIL") == 2
        assert debug_level(0) == 0
        assert debug_level("on") == 1

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="REPRO_DEBUG"):
            set_debug_level("verbose")
        with pytest.raises(ValueError):
            set_debug_level(7)


class TestFlightRecorder:
    def test_ring_drops_oldest(self):
        recorder = FlightRecorder(rank=0, capacity=4)
        for seq in range(6):
            recorder.record_scheduled(seq, "allreduce", group_id=0)
        assert recorder.depth() == 4
        assert recorder.dropped == 2
        assert [r.seq for r in recorder.records()] == [2, 3, 4, 5]

    def test_lifecycle_and_snapshot(self):
        recorder = FlightRecorder(rank=1)
        first = recorder.record_scheduled(
            0, "allreduce", 0, shape=(4,), dtype="float64", nbytes=32
        )
        recorder.mark_started(first)
        recorder.mark_completed(first)
        second = recorder.record_scheduled(1, "broadcast", 0, context="bucket 2")
        recorder.mark_started(second)

        snap = recorder.group_snapshot(0)
        assert snap["last_completed"]["seq"] == 0
        assert snap["last_scheduled"]["seq"] == 1
        assert snap["inflight"]["op"] == "broadcast"
        assert snap["inflight"]["context"] == "bucket 2"
        assert len(snap["tail"]) == 2

        recorder.mark_completed(second, error=RuntimeError("boom"))
        assert recorder.inflight(0) is None
        assert recorder.records()[-1].state == "failed"
        assert "boom" in recorder.records()[-1].error

    def test_records_filter_by_group(self):
        recorder = FlightRecorder(rank=0)
        recorder.record_scheduled(0, "allreduce", group_id=1)
        recorder.record_scheduled(0, "allreduce", group_id=2)
        assert len(recorder.records(group_id=1)) == 1
        assert recorder.group_snapshot(2)["last_scheduled"]["group_id"] == 2

    def test_context_label(self):
        assert current_collective_context() is None
        with collective_context("bucket 3"):
            assert current_collective_context() == "bucket 3"
        assert current_collective_context() is None

    def test_dump_json_and_cross_rank_table(self, tmp_path, debug_level):
        debug_level("INFO")

        def body(rank):
            pg = get_context().default_group
            with collective_context("step 0"):
                pg.allreduce(np.ones(3))
            pg.broadcast(np.zeros(2), src=0)
            return pg.flight_recorder.depth()

        assert run_world(2, body, backend="gloo") == [2, 2]

        path = tmp_path / "recorders.json"
        parsed = json.loads(dump_json(str(path)))
        assert path.exists()
        dumps = parsed["flight_recorders"]
        assert {d["rank"] for d in dumps} == {0, 1}
        records = dumps[0]["records"]
        assert [r["op"] for r in records] == ["allreduce", "broadcast"]
        assert records[0]["state"] == "completed"
        assert records[0]["context"] == "step 0"
        assert records[0]["shape"] == [3]

        table = render_cross_rank(dump_all())
        assert "rank 0" in table and "rank 1" in table
        assert "allreduce" in table and "[step 0]" in table

    def test_off_records_nothing(self, debug_level):
        debug_level("OFF")

        def body(rank):
            pg = get_context().default_group
            pg.allreduce(np.ones(3))
            return pg.flight_recorder is None and pg._watchdog is None

        assert run_world(2, body, backend="gloo") == [True, True]
        assert all_recorders() == {}


class TestDesyncDiff:
    def test_fingerprint_and_diff(self):
        mine = fingerprint("allreduce", np.zeros(3), reduce_op="sum")
        theirs = fingerprint("allreduce", np.zeros((2, 2)), reduce_op="max")
        assert mine["shape"] == (3,) and mine["nbytes"] == 24
        diffs = diff_fingerprints(mine, theirs)
        assert "reduce_op: sum != max" in diffs
        assert any(d.startswith("shape:") for d in diffs)
        assert diff_fingerprints(mine, dict(mine)) == []

    def test_describe_and_render(self):
        mine = fingerprint("allreduce", np.zeros(3))
        leader = fingerprint("broadcast", np.zeros(4), src=0)
        assert describe_fingerprint(mine).startswith("allreduce(")
        text = render_mismatch(
            5, 7, 1, mine, 0, leader, peer_signatures={0: leader, 1: mine}
        )
        assert "collective #7 mismatch in group 5" in text
        assert "rank 1 issued" in text and "leader rank 0 issued" in text
        assert "op: allreduce != broadcast" in text
        assert "<- differs" in text

    def test_desync_report_classification(self):
        stuck = {"op": "allreduce", "seq": 3, "group_id": 0, "shape": [4],
                 "dtype": "float64", "nbytes": 32, "state": "started"}
        states = {
            0: {"rank": 0, "status": "running",
                "last_completed": {"op": "allreduce", "seq": 2},
                "last_scheduled": {"op": "allreduce", "seq": 3},
                "inflight": None, "tail": []},
            1: {"rank": 1, "status": "shutdown",
                "last_completed": {"op": "allreduce", "seq": 1},
                "last_scheduled": {"op": "allreduce", "seq": 1},
                "inflight": None, "tail": []},
            2: None,
        }
        report = build_desync_report(0, 0, stuck, 5.0, states)
        assert report.missing == [2]
        assert report.culprits == [1, 2]  # rank 1 behind, rank 2 silent
        assert report.laggards == [2]     # never completed anything
        text = report.render()
        assert "allreduce#3@pg0" in text
        assert "rank 2: <no response>" in text
        assert "rank 1 (shutdown)" in text


class TestWatchdog:
    def test_watchdog_diagnoses_hang_within_timeout(self, debug_level):
        debug_level("DETAIL")
        timeout = 2.0

        def body(rank):
            pg = get_context().default_group
            pg.allreduce(np.ones(4))
            if rank == 0:
                pg.allreduce(np.ones(4))  # rank 1 never joins

        start = time.perf_counter()
        with pytest.raises(RuntimeError) as excinfo:
            run_world(2, body, backend="gloo", timeout=timeout)
        elapsed = time.perf_counter() - start
        message = str(excinfo.value)
        assert "cross-rank desync detected" in message
        assert "allreduce#1" in message
        assert "culprit rank(s) [1]" in message
        assert "rank 1 (shutdown)" in message
        assert elapsed < timeout, (
            f"diagnosis took {elapsed:.2f}s; watchdog should beat the "
            f"{timeout}s transport timeout"
        )

    def test_healthy_run_raises_no_alarm(self, debug_level):
        debug_level("INFO")

        def body(rank):
            pg = get_context().default_group
            for _ in range(3):
                pg.allreduce(np.ones(2))
            return pg._watchdog.status()

        statuses = run_world(2, body, backend="gloo")
        assert all(s["alarms_raised"] == 0 for s in statuses)
        assert all(s["active"] for s in statuses)


class TestMismatchDiagnosis:
    def test_mismatch_shows_both_fingerprints_at_detail(self, debug_level):
        debug_level("DETAIL")

        def body(rank):
            pg = get_context().default_group
            pg.allreduce(np.zeros(4 if rank == 0 else 3))

        with pytest.raises(RuntimeError, match="mismatch") as excinfo:
            run_world(2, body, backend="gloo", timeout=3)
        message = str(excinfo.value)
        assert "shape: (3,) != (4,)" in message
        assert "shape=(3,)" in message and "shape=(4,)" in message
        assert "per-rank signatures" in message


class TestWorkMeta:
    def test_timeout_error_names_collective_meta(self):
        work = Work("allreduce#3", {"op": "allreduce", "seq": 3, "bytes": 64})
        with pytest.raises(CollectiveTimeoutError) as excinfo:
            work.wait(timeout=0.01)
        message = str(excinfo.value)
        assert "allreduce#3" in message
        assert "bytes=64" in message and "op=allreduce" in message
        assert "seq=3" in message

    def test_first_completion_wins(self):
        work = Work("allreduce#0")
        rich = CollectiveTimeoutError("rich desync report")
        work._complete(rich)
        work._complete(CollectiveTimeoutError("bare transport timeout"))
        with pytest.raises(CollectiveTimeoutError, match="rich desync report"):
            work.wait(timeout=0.1)


class TestMonitoredBarrier:
    def test_all_ranks_pass_repeatedly(self):
        def body(rank):
            monitored_barrier()
            monitored_barrier()
            return True

        assert run_world(3, body, backend="gloo") == [True, True, True]

    def test_missing_rank_named(self):
        def body(rank):
            if rank != 1:
                monitored_barrier(timeout=0.5)

        with pytest.raises(RuntimeError, match=r"rank\(s\) \[1\] never reached"):
            run_world(3, body, backend="gloo", timeout=5.0)


class TestShutdownUnwedging:
    def test_shutdown_unblocks_stuck_worker(self):
        """Regression: a worker blocked in a collective no peer will ever
        join used to wedge shutdown until the full transport timeout."""

        def body(rank):
            pg = get_context().default_group
            if rank == 0:
                pg.allreduce(np.ones(2), async_op=True)  # rank 1 never joins
                time.sleep(0.1)  # let the worker block inside the transport
            start = time.perf_counter()
            ok = pg.shutdown(grace=0.3)
            return ok, time.perf_counter() - start

        results = run_world(2, body, backend="gloo", timeout=30.0)
        for ok, elapsed in results:
            assert ok, "worker thread failed to join after hub close"
            assert elapsed < 5.0, (
                f"shutdown took {elapsed:.1f}s — blocked worker was not "
                "unwedged (transport timeout is 30s)"
            )

    def test_shutdown_idempotent(self):
        def body(rank):
            pg = get_context().default_group
            pg.allreduce(np.ones(2))
            assert pg.shutdown()
            assert pg.shutdown()  # second call must not raise or hang
            return True

        assert run_world(2, body, backend="gloo") == [True, True]


class TestReducerDiagnostics:
    def _make_reducer(self, group):
        params = [Parameter(np.zeros(4)) for _ in range(3)]
        specs = compute_bucket_assignment(params, bucket_cap_bytes=10**9)
        return params, Reducer(
            params, specs, group, param_names=["net.w", "net.b", "head.w"]
        )

    def test_unready_parameters_named(self):
        class _Group:
            size = 2
            supports_cpu_tensors = True

            def allreduce(self, tensor, op="sum", async_op=False):
                return None

        params, reducer = self._make_reducer(_Group())
        reducer.prepare_for_backward([])
        (params[0].sum() * 1.0).backward()  # only net.w gets a gradient
        unready = reducer.unready_parameters()
        assert [entry["name"] for entry in unready] == ["net.b", "head.w"]
        with pytest.raises(ReducerError) as excinfo:
            reducer.prepare_for_backward([])
        message = str(excinfo.value)
        assert "net.b (index 1" in message
        assert "head.w (index 2" in message
        assert "net.w" not in message.split("Unready parameter(s)")[1]


class TestDDPConstructionChecks:
    def test_structure_mismatch_named(self, debug_level):
        debug_level("INFO")

        def body(rank):
            manual_seed(3)
            from repro import nn

            model = nn.Linear(6, 4) if rank == 0 else nn.Linear(6, 5)
            DistributedDataParallel(model)

        with pytest.raises(RuntimeError, match="replica structure mismatch") as excinfo:
            run_world(2, body, backend="gloo", timeout=3)
        message = str(excinfo.value)
        assert "weight" in message
        assert "(4, 6)" in message and "(5, 6)" in message

    def test_consistent_model_passes_detail(self, debug_level):
        debug_level("DETAIL")

        def body(rank):
            ddp = DistributedDataParallel(small_classifier())
            stats = ddp.ddp_stats()["debug"]
            return stats["level"], stats["flight_recorder_depth"] > 0

        assert run_world(2, body, backend="gloo") == [
            ("DETAIL", True), ("DETAIL", True)
        ]
