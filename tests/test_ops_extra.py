"""Additional ops (abs/sqrt/clamp/stack/min/split) and layers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, ops, randn
from repro.utils import manual_seed

from conftest import numeric_gradient
from test_autograd_ops import check_op_gradient


@pytest.fixture(autouse=True)
def seed():
    manual_seed(13)


class TestExtraOps:
    def test_abs_gradient(self, ):
        a = np.array([1.5, -2.0, 3.0, -0.5])
        check_op_gradient(lambda x: (ops.abs(x) * x).sum(), a)

    def test_sqrt_gradient(self):
        a = np.abs(np.random.default_rng(0).standard_normal(5)) + 0.5
        check_op_gradient(lambda x: ops.sqrt(x).sum(), a)

    def test_clamp_values(self):
        out = ops.clamp(Tensor(np.array([-2.0, 0.5, 3.0])), low=-1.0, high=1.0)
        assert np.allclose(out.data, [-1.0, 0.5, 1.0])

    def test_clamp_gradient_masks_boundaries(self):
        a = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        ops.clamp(a, low=-1.0, high=1.0).sum().backward()
        assert np.allclose(a.grad.data, [0.0, 1.0, 0.0])

    def test_clamp_one_sided(self):
        out = ops.clamp(Tensor(np.array([-2.0, 2.0])), low=0.0)
        assert np.allclose(out.data, [0.0, 2.0])

    def test_stack_forward_backward(self):
        rng = np.random.default_rng(1)
        check_op_gradient(
            lambda a, b: (ops.stack([a, b], axis=0) ** 2).sum(),
            rng.standard_normal((2, 3)),
            rng.standard_normal((2, 3)),
        )

    def test_stack_axis1(self):
        a, b = Tensor(np.zeros((2, 3))), Tensor(np.ones((2, 3)))
        assert ops.stack([a, b], axis=1).shape == (2, 2, 3)

    def test_min_reduction_gradient(self):
        a = np.random.default_rng(2).standard_normal((4, 5))
        check_op_gradient(lambda x: (ops.min(x, axis=1) ** 2).sum(), a)

    def test_min_matches_numpy(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert ops.min(a).item() == 0.0
        assert np.allclose(ops.min(a, axis=0).data, [0, 1, 2])

    def test_split_roundtrip(self):
        a = randn(6, 4, requires_grad=True)
        parts = ops.split(a, 3, axis=0)
        assert len(parts) == 3
        assert all(p.shape == (2, 4) for p in parts)
        sum(((p * (i + 1)) ** 2).sum() for i, p in enumerate(parts)).backward()
        assert a.grad is not None
        # different scale per part -> distinct gradient blocks
        assert not np.allclose(a.grad.data[:2], a.grad.data[2:4])

    def test_split_validates(self):
        with pytest.raises(ValueError):
            ops.split(randn(5, 2), 2, axis=0)


class TestExtraLayers:
    def test_identity(self):
        x = randn(3, 3)
        assert nn.Identity()(x) is x

    def test_softmax_module(self):
        out = nn.Softmax()(randn(4, 6))
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_axis(self):
        out = nn.Softmax(axis=0)(randn(4, 6))
        assert np.allclose(out.data.sum(axis=0), 1.0)

    def test_groupnorm_normalizes_groups(self):
        gn = nn.GroupNorm(2, 4)
        x = randn(3, 4, 5, 5) * 7.0 + 2.0
        out = gn(x)
        grouped = out.data.reshape(3, 2, -1)
        assert np.abs(grouped.mean(axis=-1)).max() < 1e-6
        assert np.abs(grouped.std(axis=-1) - 1.0).max() < 1e-3

    def test_groupnorm_2d_input(self):
        gn = nn.GroupNorm(2, 6)
        assert gn(randn(4, 6)).shape == (4, 6)

    def test_groupnorm_has_no_buffers(self):
        assert list(nn.GroupNorm(2, 4).buffers()) == []

    def test_groupnorm_gradients(self):
        gn = nn.GroupNorm(2, 4)
        (gn(randn(2, 4, 3, 3)) ** 2).sum().backward()
        assert gn.weight.grad is not None and gn.bias.grad is not None

    def test_groupnorm_validation(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 4)
        with pytest.raises(ValueError):
            nn.GroupNorm(2, 4)(randn(1, 6, 2, 2))

    def test_groupnorm_in_ddp_training(self):
        """GroupNorm removes buffer coupling: DDP equivalence holds with
        no buffer broadcasts at all."""
        from repro.core import DistributedDataParallel
        from repro.optim import SGD
        from conftest import run_world

        rng = np.random.default_rng(3)
        X = rng.standard_normal((8, 4, 2, 2))
        Y = rng.integers(0, 3, 8)

        def make_model():
            manual_seed(5)
            return nn.Sequential(
                nn.Conv2d(4, 4, 1), nn.GroupNorm(2, 4), nn.ReLU(),
                nn.Flatten(), nn.Linear(16, 3),
            )

        # local reference
        model = make_model()
        opt = SGD(model.parameters(), lr=0.05)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(3):
            opt.zero_grad()
            loss_fn(model(Tensor(X)), Y).backward()
            opt.step()
        reference = model.state_dict()

        def body(rank):
            m = make_model()
            ddp = DistributedDataParallel(m)
            opt = SGD(ddp.parameters(), lr=0.05)
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(3):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        states = run_world(2, body, backend="gloo")
        for name in reference:
            assert np.allclose(states[0][name], reference[name], atol=1e-9)
