"""The public gradcheck utility and multi-device model support."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import GradcheckError, Tensor, gradcheck, ops
from repro.core import DistributedDataParallel
from repro.core.bucket import compute_bucket_assignment
from repro.optim import SGD
from repro.utils import manual_seed

from conftest import run_world


class TestGradcheck:
    def test_passes_for_correct_ops(self):
        rng = np.random.default_rng(0)
        assert gradcheck(lambda a, b: (a @ b).sum(), [rng.standard_normal((3, 4)),
                                                      rng.standard_normal((4, 2))])
        assert gradcheck(lambda a: ops.gelu(a).sum(), [rng.standard_normal(5)])
        assert gradcheck(lambda a: (a.tanh() * a).mean(), [rng.standard_normal(6)])

    def test_detects_wrong_backward(self):
        from repro.autograd.function import Context, Function

        class BadSquare(Function):
            @staticmethod
            def forward(ctx: Context, a):
                ctx.save_for_backward(a)
                return a * a

            @staticmethod
            def backward(ctx: Context, grad):
                (a,) = ctx.saved
                return (grad * a,)  # WRONG: missing factor 2

        with pytest.raises(GradcheckError, match="mismatch"):
            gradcheck(lambda a: BadSquare.apply(a).sum(), [np.array([1.0, 2.0])])

    def test_detects_missing_gradient(self):
        with pytest.raises(GradcheckError, match="no gradient"):
            gradcheck(lambda a, b: (a * 2.0).sum(), [np.ones(2), np.ones(2)])

    def test_requires_scalar(self):
        with pytest.raises(ValueError):
            gradcheck(lambda a: a * 2.0, [np.ones(3)])


class TestMultiDeviceModels:
    """Paper §4.1 "Model Device Affinity": DDP treats a model spanning
    devices as one entity; buckets never mix devices (§4.2)."""

    @staticmethod
    def _make_split_model():
        manual_seed(21)
        model = nn.Sequential(nn.Linear(6, 16), nn.ReLU(), nn.Linear(16, 4))
        # first layer on gpu:0, second on gpu:1
        model[0].to("gpu:0")
        model[2].to("gpu:1")
        return model

    def test_buckets_respect_device_affinity(self):
        model = self._make_split_model()
        buckets = compute_bucket_assignment(list(model.parameters()), 10**9)
        assert len(buckets) == 2
        devices = {b.device for b in buckets}
        assert devices == {"gpu:0", "gpu:1"}
        for bucket in buckets:
            params = list(model.parameters())
            assert all(
                params[i].device == bucket.device for i in bucket.param_indices
            )

    def test_ddp_trains_multi_device_model_on_nccl(self):
        rng = np.random.default_rng(1)
        X, Y = rng.standard_normal((8, 6)), rng.integers(0, 4, 8)

        def body(rank):
            model = self._make_split_model()
            ddp = DistributedDataParallel(model)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(3):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict(), [b.spec.device for b in ddp.reducer.buckets]

        # NCCL backend rejects CPU tensors; the split model is all-GPU,
        # so this exercises the real device-restricted path.
        results = run_world(2, body, backend="nccl")
        assert np.allclose
        state0, devices0 = results[0]
        state1, devices1 = results[1]
        assert set(devices0) == {"gpu:0", "gpu:1"}
        for name in state0:
            assert np.allclose(state0[name], state1[name])

    def test_multi_device_equivalent_to_local(self):
        rng = np.random.default_rng(1)
        X, Y = rng.standard_normal((8, 6)), rng.integers(0, 4, 8)
        loss_fn = nn.CrossEntropyLoss()

        reference = self._make_split_model()
        opt = SGD(reference.parameters(), lr=0.05)
        for _ in range(3):
            opt.zero_grad()
            loss_fn(reference(Tensor(X)), Y).backward()
            opt.step()
        expected = reference.state_dict()

        def body(rank):
            model = self._make_split_model()
            ddp = DistributedDataParallel(model)
            opt = SGD(ddp.parameters(), lr=0.05)
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(3):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        for state in run_world(2, body, backend="nccl"):
            for name in expected:
                assert np.allclose(state[name], expected[name], atol=1e-9)


class TestReducerStats:
    def test_last_iteration_stats_populated(self):
        rng = np.random.default_rng(2)
        X, Y = rng.standard_normal((4, 6)), rng.integers(0, 4, 4)

        def body(rank):
            from conftest import small_classifier

            model = small_classifier()
            ddp = DistributedDataParallel(model)
            nn.CrossEntropyLoss()(ddp(Tensor(X)), Y).backward()
            return dict(ddp.reducer.last_iteration_stats)

        stats = run_world(2, body, backend="gloo")[0]
        assert set(stats) == {
            "prepare_to_first_grad", "backward_compute", "comm_exposed_wait", "total",
        }
        assert stats["total"] > 0
        assert stats["comm_exposed_wait"] >= 0
