"""Weight initializers and remaining simulator options."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, zeros
from repro.nn import init
from repro.simulation import SimulationConfig, TrainingSimulator
from repro.simulation.models import resnet50_profile
from repro.utils import manual_seed


@pytest.fixture(autouse=True)
def seed():
    manual_seed(17)


class TestInitializers:
    def test_uniform_range(self):
        t = zeros(1000)
        init.uniform_(t, -0.5, 0.5)
        assert t.data.min() >= -0.5 and t.data.max() <= 0.5
        assert t.data.std() > 0.1

    def test_normal_moments(self):
        t = zeros(10_000)
        init.normal_(t, mean=1.0, std=2.0)
        assert abs(t.data.mean() - 1.0) < 0.1
        assert abs(t.data.std() - 2.0) < 0.1

    def test_constant_family(self):
        t = zeros(5)
        init.ones_(t)
        assert np.all(t.data == 1)
        init.zeros_(t)
        assert np.all(t.data == 0)
        init.constant_(t, 3.5)
        assert np.all(t.data == 3.5)

    def test_kaiming_bound_scales_with_fan_in(self):
        wide = zeros(10, 1000)
        narrow = zeros(10, 10)
        init.kaiming_uniform_(wide)
        init.kaiming_uniform_(narrow)
        assert np.abs(wide.data).max() < np.abs(narrow.data).max()

    def test_xavier_uniform_bound(self):
        t = zeros(64, 64)
        init.xavier_uniform_(t)
        bound = np.sqrt(6.0 / 128)
        assert np.abs(t.data).max() <= bound + 1e-12

    def test_xavier_normal_std(self):
        t = zeros(200, 200)
        init.xavier_normal_(t)
        assert abs(t.data.std() - np.sqrt(2.0 / 400)) < 0.005

    def test_fan_requires_2d(self):
        with pytest.raises(ValueError):
            init.kaiming_uniform_(zeros(5))

    def test_conv_fan_in_uses_receptive_field(self):
        conv_w = zeros(8, 4, 3, 3)
        init.kaiming_uniform_(conv_w)
        # fan_in = 4*9 = 36; bound = sqrt(2/(1+5)) * sqrt(3/36)
        bound = np.sqrt(2.0 / 6.0) * np.sqrt(3.0 / 36.0)
        assert np.abs(conv_w.data).max() <= bound + 1e-12

    def test_initializers_draw_from_seeded_rng(self):
        a, b = zeros(20), zeros(20)
        manual_seed(3)
        init.normal_(a)
        manual_seed(3)
        init.normal_(b)
        assert np.array_equal(a.data, b.data)


class TestSimulatorOptions:
    def _sim(self, **overrides):
        settings = dict(model=resnet50_profile(), world_size=16, backend="nccl")
        settings.update(overrides)
        return TrainingSimulator(SimulationConfig(**settings))

    def test_small_first_bucket_starts_comm_earlier(self):
        plain = self._sim(bucket_cap_mb=25.0)
        eager = self._sim(bucket_cap_mb=25.0, first_bucket_cap_mb=1.0)
        # the eager layout has one extra (small) leading bucket
        assert len(eager.buckets) == len(plain.buckets) + 1
        assert eager.buckets[0].total_elements < plain.buckets[0].total_elements

    def test_first_bucket_comm_event_starts_earlier(self):
        plain = self._sim(bucket_cap_mb=25.0).simulate_iteration(0)
        eager = self._sim(bucket_cap_mb=25.0, first_bucket_cap_mb=1.0).simulate_iteration(0)

        def first_comm_start(result):
            return min(
                start for label, _, start, _ in result.events
                if label.startswith("allreduce")
            )

        assert first_comm_start(eager) < first_comm_start(plain)

    def test_gloo_pays_pcie_staging(self):
        from repro.simnet import cost_model_for
        from repro.simulation.trainer_sim import PCIE_BANDWIDTH

        sim = self._sim(backend="gloo")
        bucket = sim.buckets[0]
        nbytes = bucket.total_elements * 4
        modeled = sim._bucket_allreduce_time(bucket, 1.0)
        raw = cost_model_for("gloo").allreduce_time(nbytes, 16)
        assert modeled == pytest.approx(raw + 2 * nbytes / PCIE_BANDWIDTH)

    def test_execution_order_identity_matches_default(self):
        model = resnet50_profile()
        default = self._sim().simulate_iteration(0).total
        explicit = self._sim(
            execution_order=tuple(range(model.num_tensors - 1, -1, -1))
        ).simulate_iteration(0).total
        assert default == pytest.approx(explicit)

    def test_find_unused_appends_bitmap_event(self):
        result = self._sim(find_unused_parameters=True).simulate_iteration(0)
        assert any(label == "allreduce:bitmap" for label, *_ in result.events)
