"""DistributedDataParallel: the paper's correctness guarantees."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import get_context
from repro.core import DistributedDataParallel
from repro.models import BranchedModel
from repro.optim import SGD, Adam
from repro.utils import manual_seed

from conftest import buffered_classifier, run_world, small_classifier

RNG = np.random.default_rng(5)
X8 = RNG.standard_normal((8, 6))
Y8 = RNG.integers(0, 4, 8)


def train_local(make_model, make_opt, iters=5):
    model = make_model()
    opt = make_opt(model)
    loss_fn = nn.CrossEntropyLoss()
    for _ in range(iters):
        opt.zero_grad()
        loss_fn(model(Tensor(X8)), Y8).backward()
        opt.step()
    return model.state_dict()


def train_ddp(world, make_model, make_opt, iters=5, backend="gloo", **ddp_kwargs):
    def body(rank):
        model = make_model()
        ddp = DistributedDataParallel(model, **ddp_kwargs)
        opt = make_opt(ddp)
        loss_fn = nn.CrossEntropyLoss()
        shard = slice(rank * 8 // world, (rank + 1) * 8 // world)
        for _ in range(iters):
            opt.zero_grad()
            loss_fn(ddp(Tensor(X8[shard])), Y8[shard]).backward()
            opt.step()
        return ddp.state_dict()

    return run_world(world, body, backend=backend)


def assert_states_equal(a, b, tol=1e-9):
    assert a.keys() == b.keys()
    for name in a:
        err = np.abs(a[name] - b[name]).max()
        assert err <= tol, (name, err)


class TestMathematicalEquivalence:
    """Paper §3: DDP over W ranks == local training on the full batch."""

    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_sgd_equivalence(self, world):
        make_opt = lambda m: SGD(m.parameters(), lr=0.05)
        local = train_local(small_classifier, make_opt)
        for state in train_ddp(world, small_classifier, make_opt):
            assert_states_equal(local, state)

    def test_momentum_equivalence(self):
        make_opt = lambda m: SGD(m.parameters(), lr=0.05, momentum=0.9)
        local = train_local(small_classifier, make_opt)
        for state in train_ddp(2, small_classifier, make_opt):
            assert_states_equal(local, state)

    def test_adam_equivalence(self):
        make_opt = lambda m: Adam(m.parameters(), lr=0.01)
        local = train_local(small_classifier, make_opt)
        for state in train_ddp(2, small_classifier, make_opt):
            assert_states_equal(local, state)

    @pytest.mark.parametrize("bucket_cap_mb", [0.0, 0.0001, 25.0])
    def test_equivalence_across_bucket_sizes(self, bucket_cap_mb):
        make_opt = lambda m: SGD(m.parameters(), lr=0.05)
        local = train_local(small_classifier, make_opt)
        states = train_ddp(
            2, small_classifier, make_opt, bucket_cap_mb=bucket_cap_mb
        )
        for state in states:
            assert_states_equal(local, state)

    def test_equivalence_without_overlap(self):
        make_opt = lambda m: SGD(m.parameters(), lr=0.05)
        local = train_local(small_classifier, make_opt)
        for state in train_ddp(2, small_classifier, make_opt, overlap=False):
            assert_states_equal(local, state)

    def test_equivalence_on_nccl_backend(self):
        make_opt = lambda m: SGD(m.parameters(), lr=0.05)
        local = train_local(small_classifier, make_opt)

        def make_gpu_model():
            model = small_classifier()
            return model.to("gpu:0")

        for state in train_ddp(2, make_gpu_model, make_opt, backend="nccl"):
            assert_states_equal(local, state)

    def test_replicas_stay_identical(self):
        make_opt = lambda m: SGD(m.parameters(), lr=0.1, momentum=0.8)
        states = train_ddp(4, small_classifier, make_opt, iters=3)
        for state in states[1:]:
            assert_states_equal(states[0], state, tol=0.0)


class TestConstructorBroadcast:
    def test_divergent_initial_states_are_aligned_to_rank0(self):
        def body(rank):
            manual_seed(100 + rank)  # deliberately different weights
            model = nn.Linear(3, 3)
            ddp = DistributedDataParallel(model)
            return ddp.state_dict()

        states = run_world(3, body, backend="gloo")
        for state in states[1:]:
            assert_states_equal(states[0], state, tol=0.0)

    def test_buffers_broadcast_at_construction(self):
        def body(rank):
            model = buffered_classifier()
            # perturb rank!=0 buffers before wrapping
            if rank != 0:
                for buf in model.buffers():
                    buf.data += 7.0
            ddp = DistributedDataParallel(model)
            return {n: b.data.copy() for n, b in model.named_buffers()}

        states = run_world(2, body, backend="gloo")
        for name in states[0]:
            assert np.array_equal(states[0][name], states[1][name])

    def test_requires_parameters(self):
        def body(rank):
            DistributedDataParallel(nn.ReLU())

        with pytest.raises(RuntimeError, match="parameters"):
            run_world(2, body, backend="gloo", timeout=3)

    def test_requires_process_group(self):
        with pytest.raises(RuntimeError, match="process group|distributed context"):
            DistributedDataParallel(nn.Linear(2, 2))


class TestBufferSynchronization:
    def test_batchnorm_buffers_follow_rank0(self):
        """Rank 0's running stats win before every synced forward (§4.1)."""

        def body(rank):
            model = buffered_classifier()
            ddp = DistributedDataParallel(model)
            x = Tensor(X8[rank * 4 : (rank + 1) * 4])  # different data per rank
            out = ddp(x)
            out.sum().backward()
            # buffers were updated by forward from rank-0-aligned state;
            # next forward re-broadcasts, so compare AFTER another forward
            ddp(x)
            return {n: b.data.copy() for n, b in model.named_buffers()}

        states = run_world(2, body, backend="gloo")
        # after the second forward's broadcast, running stats cannot be
        # compared mid-flight; but num_batches_tracked must match rank 0
        for name in states[0]:
            if "num_batches" in name:
                assert np.array_equal(states[0][name], states[1][name])

    def test_broadcast_buffers_disabled(self):
        def body(rank):
            model = buffered_classifier()
            ddp = DistributedDataParallel(model, broadcast_buffers=False)
            for buf in model.buffers():
                buf.data[...] = float(rank)
            ddp(Tensor(X8[:4]))
            return float(next(iter(model.buffers())).data.reshape(-1)[0])

        # without broadcast, rank-local buffer values survive the forward
        results = run_world(2, body, backend="gloo")
        assert results[1] != results[0] or results[1] != 0.0


class TestNoSync:
    def test_no_sync_accumulates_locally(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            loss_fn = nn.CrossEntropyLoss()
            with ddp.no_sync():
                loss_fn(ddp(Tensor(X8[:4] + rank)), Y8[:4]).backward()
            grads = {n: p.grad.data.copy() for n, p in model.named_parameters()}
            return grads

        grads = run_world(2, body, backend="gloo")
        # ranks saw different inputs and did NOT communicate
        assert any(
            not np.allclose(grads[0][n], grads[1][n]) for n in grads[0]
        )

    def test_sync_after_no_sync_reduces_accumulated(self):
        rng = np.random.default_rng(0)
        xa, xb = rng.standard_normal((4, 6)), rng.standard_normal((4, 6))
        ya, yb = rng.integers(0, 4, 4), rng.integers(0, 4, 4)

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            loss_fn = nn.CrossEntropyLoss(reduction="sum")
            with ddp.no_sync():
                (loss_fn(ddp(Tensor(xa if rank == 0 else xb)), ya if rank == 0 else yb)).backward()
            (loss_fn(ddp(Tensor(xb if rank == 0 else xa)), yb if rank == 0 else ya)).backward()
            return {n: p.grad.data.copy() for n, p in model.named_parameters()}

        grads = run_world(2, body, backend="gloo")
        # both ranks processed {xa,xb} in different order; averaged
        # accumulated gradients must be identical
        for name in grads[0]:
            assert np.allclose(grads[0][name], grads[1][name], atol=1e-9)

    def test_will_sync_flag(self):
        def body(rank):
            ddp = DistributedDataParallel(small_classifier())
            flags = [ddp.will_sync]
            with ddp.no_sync():
                flags.append(ddp.will_sync)
            flags.append(ddp.will_sync)
            return flags

        assert run_world(2, body, backend="gloo")[0] == [True, False, True]


class TestUnusedParameters:
    def test_same_branch_on_all_ranks(self):
        def body(rank):
            manual_seed(4)
            model = BranchedModel()
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            loss_fn = nn.CrossEntropyLoss()
            x = Tensor(RNG.standard_normal((4, 8)))
            y = np.zeros(4, dtype=np.int64)
            loss_fn(ddp(x, branch=0), y).backward()
            used = all(p.grad is not None for p in model.branches[0].parameters())
            unused = all(p.grad is None for p in model.branches[1].parameters())
            return used, unused

        assert run_world(2, body, backend="gloo") == [(True, True)] * 2

    def test_divergent_branches_across_ranks(self):
        def body(rank):
            manual_seed(4)
            model = BranchedModel()
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            x = Tensor(np.ones((2, 8)))
            nn.CrossEntropyLoss()(ddp(x, branch=rank), np.zeros(2, dtype=np.int64)).backward()
            return [
                all(p.grad is not None for p in branch.parameters())
                for branch in model.branches
            ]

        results = run_world(2, body, backend="gloo")
        # branches 0 and 1 each used on one rank => globally used on both
        assert results[0][:2] == [True, True]
        assert results[1][:2] == [True, True]
        # branch 2 used nowhere => grads stay None everywhere
        assert results[0][2] is False and results[1][2] is False

    def test_half_used_gradient_is_halved_average(self):
        """A parameter used on 1 of 2 ranks averages grad with zero."""

        def body(rank):
            manual_seed(4)
            model = BranchedModel(num_branches=2)
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            x = Tensor(np.ones((2, 8)))
            nn.CrossEntropyLoss()(ddp(x, branch=rank), np.zeros(2, dtype=np.int64)).backward()
            return {n: p.grad.data.copy() if p.grad is not None else None
                    for n, p in model.named_parameters()}

        grads = run_world(2, body, backend="gloo")
        # both ranks agree on every gradient (averaged)
        for name in grads[0]:
            a, b = grads[0][name], grads[1][name]
            assert (a is None) == (b is None)
            if a is not None:
                assert np.allclose(a, b)

    def test_hang_detected_without_find_unused(self):
        def body(rank):
            manual_seed(4)
            model = BranchedModel()
            ddp = DistributedDataParallel(model, find_unused_parameters=False)
            x = Tensor(np.ones((2, 8)))
            nn.CrossEntropyLoss()(ddp(x, branch=0), np.zeros(2, dtype=np.int64)).backward()
            ddp(x, branch=0)  # next forward detects unfinished reduction

        with pytest.raises(RuntimeError, match="finished gradient reduction|timed out"):
            run_world(2, body, backend="gloo", timeout=3)

    def test_no_sync_accumulates_usage_bitmap(self):
        """A branch used only inside no_sync still counts as used at the
        next synchronization (paper §3.2.4)."""

        def body(rank):
            manual_seed(4)
            model = BranchedModel(num_branches=2)
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            x = Tensor(np.ones((2, 8)))
            y = np.zeros(2, dtype=np.int64)
            loss_fn = nn.CrossEntropyLoss()
            with ddp.no_sync():
                loss_fn(ddp(x, branch=1), y).backward()  # branch 1 used here only
            loss_fn(ddp(x, branch=0), y).backward()
            return all(p.grad is not None for p in model.branches[1].parameters())

        assert run_world(2, body, backend="gloo") == [True, True]


class TestTransparency:
    def test_state_dict_passthrough(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            return set(ddp.state_dict()) == set(model.state_dict())

        assert all(run_world(2, body, backend="gloo"))

    def test_parameters_are_the_module_parameters(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            return all(
                a is b for a, b in zip(ddp.parameters(), model.parameters())
            )

        assert all(run_world(2, body, backend="gloo"))

    def test_repr(self):
        def body(rank):
            ddp = DistributedDataParallel(small_classifier())
            return repr(ddp)

        text = run_world(2, body, backend="gloo")[0]
        assert "world=2" in text and "buckets=" in text

    def test_forward_kwargs_passthrough(self):
        def body(rank):
            manual_seed(4)
            ddp = DistributedDataParallel(
                BranchedModel(), find_unused_parameters=True
            )
            out = ddp(Tensor(np.ones((2, 8))), branch=1)
            return out.shape

        assert run_world(2, body, backend="gloo") == [(2, 4)] * 2
