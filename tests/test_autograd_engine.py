"""Backward-engine semantics: hooks, partial graphs, accumulation."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled, randn
from repro.autograd.engine import AccumulateGrad
from repro.autograd.graph import collect_participating_accumulators, graph_node_count
from repro.utils import manual_seed


class TestAccumulation:
    def test_grad_accumulates_across_backwards(self):
        a = randn(3, requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 3.0).sum().backward()
        assert np.allclose(a.grad.data, 5.0)

    def test_multi_consumer_sums_grads(self):
        a = randn(4, requires_grad=True)
        b = a * 2.0
        loss = (b + b * 3.0).sum()
        loss.backward()
        assert np.allclose(a.grad.data, 8.0)

    def test_diamond_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        b = a * 3.0
        c = a * 4.0
        (b * c).sum().backward()  # d/da (12 a^2) = 24a
        assert np.allclose(a.grad.data, 48.0)

    def test_each_node_executes_once(self):
        calls = []
        a = randn(3, requires_grad=True)
        b = a.exp()  # exp saves its output; count via hook below instead
        acc_calls = []
        a.accumulator().register_post_hook(lambda node: acc_calls.append(1))
        (b + b).sum().backward()
        assert len(acc_calls) == 1  # gradient delivered once, pre-summed


class TestHooks:
    def test_post_hook_fires_after_grad_written(self):
        a = randn(3, requires_grad=True)
        seen = []
        a.accumulator().register_post_hook(
            lambda node: seen.append(node.tensor.grad.data.copy())
        )
        (a * 2.0).sum().backward()
        assert len(seen) == 1
        assert np.allclose(seen[0], 2.0)

    def test_hook_removal(self):
        a = randn(3, requires_grad=True)
        seen = []
        remove = a.accumulator().register_post_hook(lambda node: seen.append(1))
        (a * 1.0).sum().backward()
        remove()
        (a * 1.0).sum().backward()
        assert len(seen) == 1

    def test_accumulator_identity_stable(self):
        a = randn(3, requires_grad=True)
        assert a.accumulator() is a.accumulator()

    def test_hooks_fire_in_backward_order(self):
        """Later layers' hooks fire before earlier layers' hooks."""
        manual_seed(0)
        w1 = randn(4, 4, requires_grad=True)
        w2 = randn(4, 4, requires_grad=True)
        order = []
        w1.accumulator().register_post_hook(lambda n: order.append("w1"))
        w2.accumulator().register_post_hook(lambda n: order.append("w2"))
        x = randn(2, 4)
        ((x @ w1) @ w2).sum().backward()
        assert order == ["w2", "w1"]

    def test_shape_mismatch_raises(self):
        a = randn(3, requires_grad=True)
        acc = a.accumulator()
        with pytest.raises(RuntimeError):
            acc.accumulate(np.zeros((2,)))


class TestPartialGraphs:
    def test_unused_leaf_gets_no_grad_and_no_hook(self):
        used = randn(3, requires_grad=True)
        unused = randn(3, requires_grad=True)
        fired = []
        unused.accumulator().register_post_hook(lambda n: fired.append(1))
        (used * 2.0).sum().backward()
        assert used.grad is not None
        assert unused.grad is None
        assert fired == []

    def test_subgraph_changes_between_iterations(self):
        a = randn(3, requires_grad=True)
        b = randn(3, requires_grad=True)
        (a * 1.0).sum().backward()
        assert a.grad is not None and b.grad is None
        a.zero_grad()
        (b * 1.0).sum().backward()
        assert a.grad is None and b.grad is not None


class TestNoGrad:
    def test_no_grad_blocks_taping(self):
        a = randn(3, requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert b.grad_fn is None
        assert not b.requires_grad

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()


class TestGraphTraversal:
    def test_collect_participating(self):
        a = randn(3, requires_grad=True)
        b = randn(3, requires_grad=True)
        c = randn(3, requires_grad=True)
        out = (a * 2.0 + b).sum()
        found = collect_participating_accumulators([out])
        ids = {id(acc) for acc in found}
        assert id(a.accumulator()) in ids
        assert id(b.accumulator()) in ids
        assert id(c.accumulator()) not in ids

    def test_collect_from_bare_leaf_output(self):
        a = randn(3, requires_grad=True)
        found = collect_participating_accumulators([a])
        assert a.accumulator() in found

    def test_collect_from_multiple_outputs(self):
        a = randn(3, requires_grad=True)
        b = randn(3, requires_grad=True)
        out1, out2 = (a * 1.0), (b * 1.0)
        found = collect_participating_accumulators([out1, out2])
        assert len(found) == 2

    def test_node_count_grows_with_ops(self):
        a = randn(3, requires_grad=True)
        shallow = graph_node_count([a * 1.0])
        deep = graph_node_count([(a * 1.0 + 2.0).exp().sum()])
        assert deep > shallow

    def test_collect_ignores_non_grad_outputs(self):
        a = randn(3)
        found = collect_participating_accumulators([a * 2.0])
        assert found == set()
