"""End-to-end integration: full distributed training runs."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import get_context, new_round_robin_group
from repro.core import DistributedDataParallel, comm_hooks
from repro.data import DataLoader, DistributedSampler, make_classification, synthetic_mnist
from repro.models import MLP, ConvNet, StochasticDepthMLP, TinyTransformer
from repro.optim import SGD, Adam
from repro.utils import manual_seed

from conftest import run_world


class TestFullTrainingRuns:
    def test_mlp_classification_converges_distributed(self):
        """2-rank DDP + DistributedSampler reaches high train accuracy."""
        ds = make_classification(128, 8, 3, separation=3.0, seed=0)

        def body(rank):
            manual_seed(1)
            model = MLP(8, [32], 3)
            ddp = DistributedDataParallel(model)
            sampler = DistributedSampler(ds, 2, rank, shuffle=True, seed=0)
            loader = DataLoader(ds, batch_size=16, sampler=sampler)
            opt = SGD(ddp.parameters(), lr=0.1)
            loss_fn = nn.CrossEntropyLoss()
            for epoch in range(8):
                sampler.set_epoch(epoch)
                for x, y in loader:
                    opt.zero_grad()
                    loss_fn(ddp(x), y).backward()
                    opt.step()
            # evaluate on the whole dataset
            xs = Tensor(np.stack([ds[i][0] for i in range(len(ds))]))
            ys = np.array([ds[i][1] for i in range(len(ds))])
            predictions = ddp(xs).argmax(axis=1)
            return float((predictions == ys).mean()), ddp.state_dict()

        results = run_world(2, body, backend="gloo", timeout=60)
        accuracies = [acc for acc, _ in results]
        assert min(accuracies) > 0.9
        # replicas ended identical
        for name, value in results[0][1].items():
            assert np.allclose(value, results[1][1][name])

    def test_convnet_on_synthetic_mnist_distributed(self):
        ds = synthetic_mnist(64, noise=0.15, seed=2)

        def body(rank):
            manual_seed(3)
            model = ConvNet(channels=2)
            ddp = DistributedDataParallel(model)
            sampler = DistributedSampler(ds, 2, rank, shuffle=True)
            loader = DataLoader(ds, batch_size=16, sampler=sampler)
            opt = Adam(ddp.parameters(), lr=5e-3)
            loss_fn = nn.CrossEntropyLoss()
            losses = []
            for epoch in range(3):
                sampler.set_epoch(epoch)
                for x, y in loader:
                    opt.zero_grad()
                    loss = loss_fn(ddp(x), y)
                    loss.backward()
                    opt.step()
                    losses.append(loss.item())
            return losses[0], losses[-1]

        for first, last in run_world(2, body, backend="gloo", timeout=120):
            assert last < first

    def test_transformer_distributed_with_no_sync(self):
        """Gradient accumulation (2 micro-batches) on a transformer."""
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, 32, (32, 8))
        labels = rng.integers(0, 2, 32)

        def body(rank):
            manual_seed(5)
            model = TinyTransformer(
                vocab_size=32, max_seq_len=8, hidden=16, num_heads=2,
                num_layers=1, ffn_dim=32, num_classes=2,
            )
            ddp = DistributedDataParallel(model)
            opt = Adam(ddp.parameters(), lr=1e-2)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 16, (rank + 1) * 16)
            x, y = tokens[shard], labels[shard]
            losses = []
            for _ in range(10):
                opt.zero_grad()
                with ddp.no_sync():
                    loss_fn(ddp(x[:8]), y[:8]).backward()
                loss = loss_fn(ddp(x[8:]), y[8:])
                loss.backward()
                opt.step()
                losses.append(loss.item())
            return losses[0], losses[-1], ddp.state_dict()

        results = run_world(2, body, backend="gloo", timeout=120)
        assert results[0][1] < results[0][0]
        for name, value in results[0][2].items():
            assert np.allclose(value, results[1][2][name])

    def test_stochastic_depth_with_shared_seed(self):
        """Layer dropping (§6.2.2): skipped layers are marked ready in
        the forward pass (find_unused_parameters), and the shared seed
        keeps the skip pattern — hence the bitmap — aligned across
        ranks."""

        def body(rank):
            manual_seed(6)
            model = StochasticDepthMLP(num_blocks=4, drop_prob=0.4)
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            rng = np.random.default_rng(10)  # same data-gen on both ranks
            manual_seed(7)  # SAME dropout seed on every rank
            kept_history = []
            for _ in range(4):
                x = Tensor(rng.standard_normal((4, 16)))
                y = rng.integers(0, 4, 4)
                opt.zero_grad()
                loss_fn(ddp(x), y).backward()
                opt.step()
                kept_history.append(tuple(model.last_kept))
            return kept_history, ddp.state_dict()

        results = run_world(2, body, backend="gloo", timeout=60)
        assert results[0][0] == results[1][0]  # same skip pattern
        for name, value in results[0][1].items():
            assert np.allclose(value, results[1][1][name])

    def test_stochastic_depth_divergent_seeds_needs_find_unused(self):
        """Different skip patterns across ranks require
        find_unused_parameters=True and still stay consistent."""

        def body(rank):
            manual_seed(6)
            model = StochasticDepthMLP(num_blocks=4, drop_prob=0.5)
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            rng = np.random.default_rng(10)
            manual_seed(100 + rank)  # DIFFERENT dropout draws per rank
            for _ in range(4):
                x = Tensor(rng.standard_normal((4, 16)))
                y = rng.integers(0, 4, 4)
                opt.zero_grad()
                loss_fn(ddp(x), y).backward()
                opt.step()
            return ddp.state_dict()

        results = run_world(2, body, backend="gloo", timeout=60)
        for name, value in results[0].items():
            assert np.allclose(value, results[1][name])

    def test_round_robin_process_group_with_ddp(self):
        """DDP over a round-robin composite group (paper §5.4)."""
        rng = np.random.default_rng(11)
        X = rng.standard_normal((8, 6))
        Y = rng.integers(0, 4, 8)

        def body(rank):
            manual_seed(8)
            rr = new_round_robin_group("gloo", num_groups=3)
            model = nn.Sequential(nn.Linear(6, 16), nn.ReLU(), nn.Linear(16, 4))
            ddp = DistributedDataParallel(model, process_group=rr, bucket_cap_mb=0.0001)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(4):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            state = ddp.state_dict()
            rr.shutdown()
            return state

        results = run_world(2, body, timeout=60)
        for name, value in results[0].items():
            assert np.allclose(value, results[1][name])

    def test_four_ranks_with_compression_and_sampler(self):
        """Maximal composition: 4 ranks, fp16 hook, sampler, momentum."""
        ds = make_classification(64, 6, 2, separation=4.0, seed=5)

        def body(rank):
            manual_seed(9)
            model = MLP(6, [16], 2)
            ddp = DistributedDataParallel(
                model, comm_hook=comm_hooks.fp16_compress_hook
            )
            sampler = DistributedSampler(ds, 4, rank, shuffle=True)
            loader = DataLoader(ds, batch_size=8, sampler=sampler)
            opt = SGD(ddp.parameters(), lr=0.1, momentum=0.9)
            loss_fn = nn.CrossEntropyLoss()
            for epoch in range(4):
                sampler.set_epoch(epoch)
                for x, y in loader:
                    opt.zero_grad()
                    loss_fn(ddp(x), y).backward()
                    opt.step()
            xs = Tensor(np.stack([ds[i][0] for i in range(len(ds))]))
            ys = np.array([ds[i][1] for i in range(len(ds))])
            return float((ddp(xs).argmax(axis=1) == ys).mean())

        accuracies = run_world(4, body, backend="gloo", timeout=120)
        assert min(accuracies) > 0.85
