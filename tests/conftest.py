"""Shared test helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.comm import run_distributed
from repro.utils import manual_seed


def run_world(world_size, fn, backend=None, timeout=10.0, **group_kwargs):
    """Run ``fn`` on rank threads with a short test-friendly timeout.

    Extra keyword arguments (``num_streams=2``, ``chunk_bytes=...``)
    are forwarded to the backend process-group constructor.
    """
    return run_distributed(
        world_size, fn, backend=backend, timeout=timeout, **group_kwargs
    )


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn()
        flat[i] = original - eps
        lower = fn()
        flat[i] = original
        gflat[i] = (upper - lower) / (2 * eps)
    return grad


def small_classifier(seed: int = 7) -> nn.Module:
    """A deterministic 2-layer classifier (same weights for same seed)."""
    manual_seed(seed)
    return nn.Sequential(nn.Linear(6, 16), nn.ReLU(), nn.Linear(16, 4))


def buffered_classifier(seed: int = 7) -> nn.Module:
    """Classifier containing BatchNorm buffers."""
    manual_seed(seed)
    return nn.Sequential(
        nn.Linear(6, 16), nn.BatchNorm1d(16), nn.ReLU(), nn.Linear(16, 4)
    )


@pytest.fixture
def rng():
    return np.random.default_rng(0)
