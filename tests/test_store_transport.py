"""Rendezvous store and point-to-point transport."""

import threading
import time

import numpy as np
import pytest

from repro.comm.store import Store, StoreTimeoutError
from repro.comm.transport import (
    TransportClosedError,
    TransportHub,
    TransportTimeoutError,
)


class TestStore:
    def test_set_get(self):
        store = Store()
        store.set("k", 42)
        assert store.get("k") == 42

    def test_get_blocks_until_set(self):
        store = Store()
        result = []

        def reader():
            result.append(store.get("slow", timeout=5))

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        store.set("slow", "value")
        t.join(timeout=5)
        assert result == ["value"]

    def test_get_timeout(self):
        with pytest.raises(StoreTimeoutError):
            Store().get("missing", timeout=0.05)

    def test_add_atomicity(self):
        store = Store()
        threads = [
            threading.Thread(target=lambda: [store.add("n") for _ in range(100)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.get("n") == 800

    def test_add_returns_new_value(self):
        store = Store()
        assert store.add("x", 5) == 5
        assert store.add("x", 2) == 7

    def test_wait_multiple_keys(self):
        store = Store()
        store.set("a", 1)
        store.set("b", 2)
        store.wait(["a", "b"], timeout=0.1)

    def test_wait_timeout_reports_missing(self):
        store = Store()
        store.set("a", 1)
        with pytest.raises(StoreTimeoutError, match="b"):
            store.wait(["a", "b"], timeout=0.05)

    def test_wait_value_predicate(self):
        store = Store()
        store.set("count", 3)
        assert store.wait_value("count", lambda v: v >= 3, timeout=0.1) == 3

    def test_delete_and_keys(self):
        store = Store()
        store.set("a", 1)
        assert store.delete("a")
        assert not store.delete("a")
        assert store.keys() == []


class TestTransport:
    def test_send_recv(self):
        hub = TransportHub(2)
        hub.send(0, 1, "t", np.arange(3))
        assert np.array_equal(hub.recv(1, 0, "t"), np.arange(3))

    def test_fifo_per_mailbox(self):
        hub = TransportHub(2)
        hub.send(0, 1, "t", 1)
        hub.send(0, 1, "t", 2)
        assert hub.recv(1, 0, "t") == 1
        assert hub.recv(1, 0, "t") == 2

    def test_tags_isolate(self):
        hub = TransportHub(2)
        hub.send(0, 1, "a", "A")
        hub.send(0, 1, "b", "B")
        assert hub.recv(1, 0, "b") == "B"
        assert hub.recv(1, 0, "a") == "A"

    def test_recv_blocks_until_send(self):
        hub = TransportHub(2)
        out = []

        def receiver():
            out.append(hub.recv(1, 0, "x", timeout=5))

        t = threading.Thread(target=receiver)
        t.start()
        time.sleep(0.05)
        hub.send(0, 1, "x", 99)
        t.join(timeout=5)
        assert out == [99]

    def test_recv_timeout_message_names_ranks(self):
        hub = TransportHub(2)
        with pytest.raises(TransportTimeoutError, match="rank 1 timed out"):
            hub.recv(1, 0, "never", timeout=0.05)

    def test_rank_bounds_checked(self):
        hub = TransportHub(2)
        with pytest.raises(ValueError):
            hub.send(0, 5, "t", 1)
        with pytest.raises(ValueError):
            hub.recv(-1, 0, "t")

    def test_close_wakes_receivers(self):
        hub = TransportHub(2)
        errors = []

        def receiver():
            try:
                hub.recv(1, 0, "x", timeout=10)
            except TransportClosedError as exc:
                errors.append(exc)

        t = threading.Thread(target=receiver)
        t.start()
        time.sleep(0.05)
        hub.close()
        t.join(timeout=5)
        assert len(errors) == 1

    def test_send_after_close_rejected(self):
        hub = TransportHub(2)
        hub.close()
        with pytest.raises(TransportClosedError):
            hub.send(0, 1, "t", 1)

    def test_stats_counting(self):
        hub = TransportHub(2)
        hub.send(0, 1, "t", np.zeros(10))
        assert hub.messages_sent[0] == 1
        assert hub.bytes_sent[0] == 80
        hub.reset_stats()
        assert hub.messages_sent == [0, 0]

    def test_pending_messages(self):
        hub = TransportHub(2)
        hub.send(0, 1, "t", 1)
        assert hub.pending_messages() == 1
        hub.recv(1, 0, "t")
        assert hub.pending_messages() == 0

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            TransportHub(0)
