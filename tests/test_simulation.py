"""Streams, model profiles, and the iteration simulator."""

import numpy as np
import pytest

from repro.simulation import (
    SimulationConfig,
    Stream,
    Timeline,
    TrainingSimulator,
    bert_profile,
    resnet50_profile,
    resnet152_profile,
)
from repro.simulation.models import profile_by_name
from repro.simnet import SharedEntitlement


class TestStreams:
    def test_serial_execution(self):
        s = Stream("comm")
        op1 = s.schedule("a", ready=0.0, duration=2.0)
        op2 = s.schedule("b", ready=1.0, duration=1.0)
        assert op1.start == 0.0 and op1.end == 2.0
        assert op2.start == 2.0  # waits for stream, not just readiness
        assert op2.queueing_delay == 1.0

    def test_idle_gap_respected(self):
        s = Stream("comm")
        s.schedule("a", ready=0.0, duration=1.0)
        op = s.schedule("b", ready=5.0, duration=1.0)
        assert op.start == 5.0

    def test_busy_time(self):
        s = Stream("comm")
        s.schedule("a", 0.0, 1.0)
        s.schedule("b", 10.0, 2.0)
        assert s.busy_time() == 3.0

    def test_timeline_makespan(self):
        tl = Timeline()
        tl.stream("x").schedule("a", 0.0, 1.0)
        tl.stream("y").schedule("b", 0.0, 5.0)
        assert tl.makespan() == 5.0
        assert len(tl.ops()) == 2
        tl.reset()
        assert tl.makespan() == 0.0


class TestModelProfiles:
    def test_resnet50_size(self):
        p = resnet50_profile()
        assert 25e6 < p.num_params < 26.5e6
        assert p.num_tensors > 150

    def test_resnet152_size(self):
        p = resnet152_profile()
        assert 59e6 < p.num_params < 62e6

    def test_bert_is_about_15x_resnet50(self):
        ratio = bert_profile().num_params / resnet50_profile().num_params
        assert 12 < ratio < 15

    def test_gradient_bytes_fp32(self):
        p = resnet50_profile()
        assert p.gradient_bytes == p.num_params * 4

    def test_profile_by_name(self):
        assert profile_by_name("resnet50").name == "resnet50"
        with pytest.raises(ValueError):
            profile_by_name("alexnet")

    def test_profiles_have_many_small_tensors(self):
        """Bucketing matters because of tiny BatchNorm/bias tensors."""
        p = resnet50_profile()
        small = sum(1 for spec in p.params if spec.numel() < 10_000)
        assert small > len(p.params) / 2


class TestSimulatorInvariants:
    def _sim(self, **overrides):
        defaults = dict(model=resnet50_profile(), world_size=16, backend="nccl")
        defaults.update(overrides)
        return TrainingSimulator(SimulationConfig(**defaults))

    def test_deterministic_given_seed(self):
        a = self._sim().simulate_iteration(3)
        b = self._sim().simulate_iteration(3)
        assert a.total == b.total

    def test_world_one_has_no_comm(self):
        result = self._sim(world_size=1).simulate_iteration(0)
        assert result.backward_comm_total == 0.0
        assert not result.synced

    def test_overlap_never_slower(self):
        for backend in ("nccl", "gloo"):
            with_overlap = self._sim(backend=backend).breakdown()
            without = self._sim(backend=backend, overlap=False).breakdown()
            assert with_overlap["total"] <= without["total"] + 1e-9

    def test_overlap_hides_communication(self):
        result = self._sim().simulate_iteration(0)
        assert result.backward_comm_exposed < result.backward_comm_total

    def test_comm_grows_with_world(self):
        small = self._sim(world_size=2).breakdown()
        large = self._sim(world_size=32).breakdown()
        assert large["backward_comm_total"] > small["backward_comm_total"]

    def test_gloo_slower_than_nccl(self):
        nccl = self._sim(backend="nccl").median_latency(8)
        gloo = self._sim(backend="gloo").median_latency(8)
        assert gloo > nccl * 1.5

    def test_bert_slower_than_resnet(self):
        resnet = self._sim().median_latency(4)
        bert = self._sim(model=bert_profile()).median_latency(4)
        assert bert > resnet * 2

    def test_skip_sync_reduces_average_latency(self):
        always = self._sim(world_size=32, sync_every=1).average_latency(16)
        skip8 = self._sim(world_size=32, sync_every=8).average_latency(16)
        assert skip8 < always

    def test_sync_cadence(self):
        sim = self._sim(sync_every=4)
        flags = [sim.simulate_iteration(i).synced for i in range(8)]
        assert flags == [True, False, False, False] * 2

    def test_bucket_extremes_worse_than_middle(self):
        """Fig. 7: 0 MB is bad; the optimum is an intermediate size."""
        per_grad = self._sim(bucket_cap_mb=0.0).median_latency(6)
        middle = self._sim(bucket_cap_mb=25.0).median_latency(6)
        assert per_grad > middle * 1.2

    def test_bert_prefers_larger_buckets_than_resnet(self):
        """§5.2: the optimal bucket size grows with model size."""

        def best_cap(model, caps):
            latencies = [
                TrainingSimulator(
                    SimulationConfig(
                        model=model, world_size=16, backend="nccl", bucket_cap_mb=c
                    )
                ).median_latency(6)
                for c in caps
            ]
            return caps[int(np.argmin(latencies))]

        caps = [5, 10, 25, 50, 100]
        assert best_cap(resnet50_profile(), caps) <= 25
        assert best_cap(bert_profile(), caps) >= 50

    def test_round_robin_helps_bert_more_than_resnet(self):
        """Fig. 12: rr3 mostly helps large-model NCCL runs."""

        def gain(model):
            rr1 = TrainingSimulator(
                SimulationConfig(model=model, world_size=16, backend="nccl")
            ).median_latency(6)
            rr3 = TrainingSimulator(
                SimulationConfig(
                    model=model, world_size=16, backend="nccl", num_comm_streams=3
                )
            ).median_latency(6)
            return 1 - rr3 / rr1

        assert gain(bert_profile()) > gain(resnet50_profile()) + 0.1

    def test_find_unused_adds_bitmap_cost(self):
        plain = self._sim(world_size=32).breakdown()
        unused = self._sim(world_size=32, find_unused_parameters=True).breakdown()
        assert unused["backward_comm_total"] > plain["backward_comm_total"]

    def test_entitlement_degradation_slows_large_scale(self):
        ideal = self._sim(world_size=32).median_latency(6)
        shared = TrainingSimulator(
            SimulationConfig(
                model=resnet50_profile(),
                world_size=32,
                backend="nccl",
                entitlement=SharedEntitlement(),
            )
        ).median_latency(6)
        assert shared > ideal

    def test_breakdown_keys(self):
        parts = self._sim().breakdown()
        assert set(parts) == {
            "forward",
            "backward_compute",
            "backward_comm_exposed",
            "backward_comm_total",
            "optimizer",
            "total",
        }
        assert parts["total"] == pytest.approx(
            parts["forward"]
            + parts["backward_compute"]
            + parts["backward_comm_exposed"]
            + parts["optimizer"]
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingSimulator(SimulationConfig(model=resnet50_profile(), world_size=0))
        with pytest.raises(ValueError):
            TrainingSimulator(
                SimulationConfig(model=resnet50_profile(), world_size=2, sync_every=0)
            )
        with pytest.raises(ValueError):
            TrainingSimulator(
                SimulationConfig(
                    model=resnet50_profile(), world_size=2, num_comm_streams=0
                )
            )

    def test_with_override(self):
        cfg = SimulationConfig(model=resnet50_profile(), world_size=4)
        cfg2 = cfg.with_(world_size=8)
        assert cfg.world_size == 4 and cfg2.world_size == 8

    def test_gradient_ready_times_reverse_order(self):
        sim = self._sim()
        ready = sim.gradient_ready_times(np.random.default_rng(0))
        # earlier (definition-order) parameters become ready later
        assert ready[0] == ready.max()
        assert ready[-1] == ready.min()

    def test_scalability_curve_monotone_with_ideal_network(self):
        latencies = [
            self._sim(world_size=w).median_latency(4) for w in (2, 8, 16, 32)
        ]
        assert latencies[-1] >= latencies[0]
