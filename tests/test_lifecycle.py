"""Training-run lifecycle: schedulers, checkpoint/resume, summary."""

import os
import tempfile

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.core import DistributedDataParallel
from repro.optim import SGD, StepLR
from repro.utils import load_checkpoint, manual_seed, save_checkpoint

from conftest import run_world, small_classifier

RNG = np.random.default_rng(61)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


class TestCheckpointResume:
    def test_interrupted_run_matches_uninterrupted(self):
        """Train 6 iterations straight vs 3 + checkpoint + restart + 3:
        end states must match exactly (momentum-free for simplicity)."""

        def train(rank, ddp, opt, sched, iters):
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(iters):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
                sched.step()

        def straight(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            opt = SGD(ddp.parameters(), lr=0.1)
            sched = StepLR(opt, step_size=2, gamma=0.5)
            train(rank, ddp, opt, sched, 6)
            return ddp.state_dict()

        reference = run_world(2, straight, backend="gloo")[0]

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "mid.npz")

            def first_half(rank):
                model = small_classifier()
                ddp = DistributedDataParallel(model)
                opt = SGD(ddp.parameters(), lr=0.1)
                sched = StepLR(opt, step_size=2, gamma=0.5)
                train(rank, ddp, opt, sched, 3)
                if rank == 0:
                    save_checkpoint(path, ddp, extra={"completed": 3})
                return True

            run_world(2, first_half, backend="gloo")

            def second_half(rank):
                manual_seed(999 + rank)  # deliberately different weights
                model = small_classifier()
                if rank == 0:
                    extra = load_checkpoint(path, model)
                    assert int(extra["completed"]) == 3
                ddp = DistributedDataParallel(model)  # broadcast aligns rank 1
                opt = SGD(ddp.parameters(), lr=0.1)
                sched = StepLR(opt, step_size=2, gamma=0.5)
                # replay the scheduler to iteration 3
                for _ in range(3):
                    sched.step()
                train(rank, ddp, opt, sched, 3)
                return ddp.state_dict()

            resumed = run_world(2, second_half, backend="gloo")

        for name in reference:
            assert np.allclose(resumed[0][name], reference[name], atol=1e-12)
            assert np.allclose(resumed[1][name], reference[name], atol=1e-12)

    def test_scheduler_synchronized_across_ranks(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            opt = SGD(ddp.parameters(), lr=1.0)
            sched = StepLR(opt, step_size=1, gamma=0.5)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            lrs = []
            for _ in range(3):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
                sched.step()
                lrs.append(opt.param_groups[0]["lr"])
            return lrs, ddp.state_dict()

        results = run_world(2, body, backend="gloo")
        assert results[0][0] == results[1][0] == [0.5, 0.25, 0.125]
        for name in results[0][1]:
            assert np.array_equal(results[0][1][name], results[1][1][name])


class TestSummary:
    def test_summary_contents(self):
        def body(rank):
            ddp = DistributedDataParallel(small_classifier(), bucket_cap_mb=0.0005)
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return ddp.summary()

        text = run_world(2, body, backend="gloo")[0]
        assert "world size:          2" in text
        assert "backend:             gloo" in text
        assert "iterations synced:   1" in text
        assert "bucket" in text  # the layout table
