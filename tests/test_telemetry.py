"""Telemetry subsystem: metrics, spans, Chrome export, stragglers.

Covers the observability acceptance surface: thread-safe metric
recording, span nesting, a real (non-simulated) 4-rank DDP run whose
exported Chrome trace contains compute and comm spans for every rank
with comm spans landing inside the right iteration, straggler
detection, rank-aware logging, and the zero-overhead disabled path.
"""

from __future__ import annotations

import json
import logging
import threading
import time

import numpy as np
import pytest

from conftest import run_world, small_classifier
from repro import nn, optim, telemetry
from repro.autograd import Tensor
from repro.core import DistributedDataParallel
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots
from repro.utils import manual_seed
from repro.utils.logging import enable_logging, logger
from repro.utils.rank import get_current_rank, set_current_rank


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry off and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _train_ddp(rank, iterations=3, bucket_cap_mb=0.02):
    """One rank of a real multi-bucket DDP training loop."""
    manual_seed(0)
    net = nn.Sequential(
        nn.Linear(32, 64), nn.ReLU(), nn.Linear(64, 64), nn.ReLU(), nn.Linear(64, 8)
    )
    ddp = DistributedDataParallel(net, bucket_cap_mb=bucket_cap_mb)
    opt = optim.SGD(ddp.parameters(), lr=0.01)
    rng = np.random.default_rng(rank)
    for _ in range(iterations):
        inp = Tensor(rng.standard_normal((16, 32)))
        exp = rng.integers(0, 8, 16)
        opt.zero_grad()
        nn.CrossEntropyLoss()(ddp(inp), exp).backward()
        opt.step()
    return ddp


class TestMetricsRegistry:
    def test_counter_thread_safety(self):
        registry = MetricsRegistry(rank=0)
        counter = registry.counter("hits")
        hist = registry.histogram("latency")

        def worker():
            for _ in range(1000):
                counter.add(1)
                hist.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        assert hist.count == 8000

    def test_instrument_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_summary_and_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("d")
        for v in range(100):
            hist.observe(float(v))
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 0.0 and summary["max"] == 99.0
        assert 45 <= summary["p50"] <= 55
        assert 90 <= summary["p95"] <= 99

    def test_snapshot_merge_across_ranks(self):
        snaps = []
        for rank in range(3):
            registry = MetricsRegistry(rank=rank)
            registry.counter("allreduce.bytes").add(100 * (rank + 1))
            registry.gauge("depth").set(rank)
            registry.histogram("lat").observe(0.1 * (rank + 1))
            snaps.append(registry.snapshot())
        merged = merge_snapshots(snaps)
        assert merged["counters"]["allreduce.bytes"] == 600
        assert merged["gauges"]["depth"]["max"] == 2
        assert merged["histograms"]["lat"]["count"] == 3
        assert merged["histograms"]["lat"]["max"] == pytest.approx(0.3)


class TestSpans:
    def test_span_nesting_depth_and_containment(self):
        telemetry.enable()
        set_current_rank(7)
        try:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    time.sleep(0.001)
        finally:
            set_current_rank(None)
        spans = {s.name: s for s in telemetry.get_tracer().spans(rank=7)}
        outer, inner = spans["outer"], spans["inner"]
        assert outer.depth == 0 and inner.depth == 1
        assert outer.t_start <= inner.t_start <= inner.t_end <= outer.t_end

    def test_explicit_begin_end(self):
        telemetry.enable()
        span = telemetry.begin("phase", cat="compute", rank=3, step=1)
        span.set(extra=2)
        span.end()
        span.end()  # idempotent
        [record] = telemetry.get_tracer().spans(rank=3)
        assert record.args == {"step": 1, "extra": 2}

    def test_ring_buffer_caps_memory(self):
        telemetry.enable()
        tracer = telemetry.get_tracer()
        old_capacity = tracer.capacity
        tracer.capacity = 16
        try:
            for i in range(100):
                tracer.record(f"s{i}", 0.0, 1.0, rank=5)
            spans = tracer.spans(rank=5)
            assert len(spans) == 16
            assert spans[-1].name == "s99"  # oldest dropped, newest kept
        finally:
            tracer.capacity = old_capacity

    def test_disabled_span_is_noop(self):
        assert not telemetry.is_enabled()
        with telemetry.span("ignored") as s:
            s.set(a=1)
        assert telemetry.get_tracer().span_count() == 0


class TestRealRunTracing:
    def test_chrome_trace_of_real_4rank_run(self, tmp_path):
        telemetry.enable()
        iterations = 3
        run_world(4, lambda rank: (_train_ddp(rank, iterations), None)[1],
                  backend="gloo")
        path = telemetry.export_chrome_trace(str(tmp_path / "trace.json"))

        with open(path) as handle:
            doc = json.load(handle)  # valid Trace Event JSON
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        for rank in range(4):
            rank_events = [e for e in complete if e["pid"] == rank]
            cats = {e["cat"] for e in rank_events}
            assert "compute" in cats, f"rank {rank} missing compute spans"
            assert "comm" in cats, f"rank {rank} missing comm spans"
            # Every bucket AllReduce lands inside the right iteration:
            # its interval is contained in exactly the iteration span
            # whose index it served.
            iteration_windows = {
                e["args"]["iteration"]: (e["ts"], e["ts"] + e["dur"])
                for e in rank_events
                if e["cat"] == "iteration"
            }
            assert sorted(iteration_windows) == list(range(iterations))
            allreduces = [
                e for e in rank_events
                if e["cat"] == "comm" and e["args"].get("op") == "allreduce"
            ]
            assert len(allreduces) >= iterations  # >= one bucket per iteration
            for event in allreduces:
                inside = [
                    i for i, (start, end) in iteration_windows.items()
                    if start <= event["ts"] and event["ts"] + event["dur"] <= end
                ]
                assert len(inside) == 1, (
                    f"comm span {event['name']} on rank {rank} not nested "
                    f"under exactly one iteration: {inside}"
                )
        # Metadata rows name every rank's process.
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in events if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names[2] == "rank 2"

    def test_ddp_stats_report(self):
        telemetry.enable()

        def body(rank):
            # Wide enough that backward compute spans several thread
            # scheduling quanta, so early buckets' AllReduces genuinely
            # run concurrently with the remaining backward.
            manual_seed(0)
            net = nn.Sequential(
                nn.Linear(64, 256), nn.ReLU(), nn.Linear(256, 256), nn.ReLU(),
                nn.Linear(256, 256), nn.ReLU(), nn.Linear(256, 8)
            )
            ddp = DistributedDataParallel(net, bucket_cap_mb=0.3)
            opt = optim.SGD(ddp.parameters(), lr=0.01)
            rng = np.random.default_rng(rank)
            for _ in range(3):
                inp = Tensor(rng.standard_normal((64, 64)))
                exp = rng.integers(0, 8, 64)
                opt.zero_grad()
                nn.CrossEntropyLoss()(ddp(inp), exp).backward()
                opt.step()
            return ddp.ddp_stats()

        stats = run_world(2, body, backend="gloo")[0]
        assert stats["world_size"] == 2
        assert stats["num_buckets"] == len(stats["bucket_sizes_bytes"]) >= 2
        assert all(size > 0 for size in stats["bucket_sizes_bytes"])
        assert stats["unused_parameter_count"] == 0
        assert 0.0 < stats["comm_compute_overlap_ratio"] <= 1.0
        assert len(stats["per_bucket_allreduce_latency_s"]) == stats["num_buckets"]
        assert all(lat > 0 for lat in stats["per_bucket_allreduce_latency_s"])
        assert stats["last_iteration"]["total"] > 0

    def test_ddp_stats_counts_unused_parameters(self):
        def body(rank):
            from repro.models.dynamic import BranchedModel

            manual_seed(0)
            model = BranchedModel(num_branches=2)
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            X = np.random.default_rng(3).standard_normal((4, 8))
            # Both ranks route branch 0; branch 1 stays globally unused.
            out = ddp(Tensor(X), branch=0)
            nn.CrossEntropyLoss()(out, np.zeros(4, dtype=np.int64)).backward()
            return ddp.ddp_stats()

        stats = run_world(2, body, backend="gloo")[0]
        assert stats["unused_parameter_count"] == 2  # weight + bias of branch 1

    def test_disabled_run_records_zero_spans_and_metrics(self):
        assert not telemetry.is_enabled()
        run_world(2, lambda rank: (_train_ddp(rank, iterations=2), None)[1],
                  backend="gloo")
        assert telemetry.get_tracer().span_count() == 0
        assert all(
            not snap["counters"] and not snap["histograms"]
            for snap in telemetry.all_snapshots()
        )

    def test_legacy_iteration_stats_still_populated_when_disabled(self):
        def body(rank):
            ddp = _train_ddp(rank, iterations=1)
            return dict(ddp.reducer.last_iteration_stats)

        stats = run_world(2, body, backend="gloo")[0]
        assert set(stats) == {
            "prepare_to_first_grad", "backward_compute", "comm_exposed_wait", "total",
        }
        assert stats["total"] > 0


class TestStragglerDetection:
    def test_flags_injected_straggler(self):
        def body(rank):
            from repro.comm.distributed import get_context

            group = get_context().default_group
            # Rank 3 pretends its backward took 4x everyone else's.
            local = 0.4 if rank == 3 else 0.1
            return telemetry.detect_stragglers(group, local, threshold=1.5)

        reports = run_world(4, body, backend="gloo")
        for rank, report in enumerate(reports):
            assert report.stragglers == [3]
            assert report.is_straggler == (rank == 3)
            assert report.median == pytest.approx(0.1)
            assert report.max_slowdown == pytest.approx(4.0)
        assert "straggler" in reports[0].describe()

    def test_balanced_ranks_not_flagged(self):
        def body(rank):
            from repro.comm.distributed import get_context

            group = get_context().default_group
            return telemetry.detect_stragglers(group, 0.1, threshold=1.5)

        for report in run_world(2, body, backend="gloo"):
            assert report.stragglers == []
            assert report.max_slowdown == pytest.approx(1.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            telemetry.detect_stragglers(None, 0.1, threshold=0.9)


class TestRankAwareLogging:
    def test_enable_logging_is_idempotent(self):
        before = list(logger.handlers)
        enable_logging("info")
        enable_logging("debug")
        enable_logging("info")
        ours = [h for h in logger.handlers if getattr(h, "_repro_handler", False)]
        assert len(ours) == 1
        assert logger.level == logging.INFO
        # restore: drop the handler we added
        logger.handlers = before

    def test_log_records_carry_actual_rank(self):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append((record.rank, record.getMessage()))

        handler = Capture()
        from repro.utils.logging import RankFilter

        handler.addFilter(RankFilter())
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.DEBUG)
        try:
            def body(rank):
                logger.debug("hello from %d", rank)

            run_world(2, body)
            logger.debug("outside")
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        by_message = {msg: rank for rank, msg in records}
        assert by_message["hello from 0"] == 0
        assert by_message["hello from 1"] == 1
        assert by_message["outside"] == "-"

    def test_rank_contextvar_set_inside_harness(self):
        ranks = run_world(2, lambda rank: get_current_rank())
        assert ranks == [0, 1]
        assert get_current_rank() is None


class TestTelemetryLifecycle:
    def test_enable_disable_reset(self):
        telemetry.enable()
        telemetry.enable()  # idempotent
        assert telemetry.is_enabled()
        telemetry.get_tracer().record("x", 0.0, 1.0, rank=0)
        telemetry.registry_for(0).counter("c").add(1)
        telemetry.reset()
        assert telemetry.is_enabled()  # reset clears data, not the switch
        assert telemetry.get_tracer().span_count() == 0
        assert telemetry.all_snapshots() == []
        telemetry.disable()
        assert not telemetry.is_enabled()

    def test_spans_survive_disable_until_reset(self):
        telemetry.enable()
        telemetry.get_tracer().record("kept", 0.0, 1.0, rank=0)
        telemetry.disable()
        assert telemetry.get_tracer().span_count() == 1

    def test_iteration_recorder_is_single_timing_source(self):
        """The legacy ad-hoc fields are gone; stats come from the recorder."""
        from repro.core.reducer import Reducer

        assert not hasattr(Reducer, "_t_prepare")

        def body(rank):
            ddp = _train_ddp(rank, iterations=1)
            recorder = ddp.reducer.recorder
            return (
                dict(ddp.reducer.last_iteration_stats),
                dict(recorder.last_detail["phases"]),
            )

        legacy, phases = run_world(2, body, backend="gloo")[0]
        assert legacy == phases
