"""Comm health engine: efficiency accounting, causal event log, attribution.

Covers the health acceptance surface: per-collective efficiency metrics
(achieved bus bandwidth, chunk-pipeline utilization, receive-stall
attribution) flowing into ``ddp_stats()["health"]`` and Prometheus, the
cross-rank causal event log and its stitched timeline, the rule-based
anomaly detectors on synthetic signals, and — the headline — a seeded
fault matrix where injected faults yield the *correct* attributed
diagnosis on every seed while fault-free runs stay silent.
"""

from __future__ import annotations

import importlib.util
import json
import os

import numpy as np
import pytest

from conftest import run_world
from repro import nn, optim, telemetry
from repro.autograd import Tensor
from repro.resilience import FaultPlan, ReliableTransportHub, RetryPolicy
from repro.resilience.faults import corrupt, delay, drop, slow_rank
from repro.telemetry.health import (
    DESYNC_PRECURSOR,
    OVERLAP_COLLAPSE,
    PERSISTENT_STRAGGLER,
    RETRANSMIT_STORM,
    SLOW_LINK,
    Diagnosis,
    EventLog,
    analyze_snapshots,
    analyze_ticks,
    merge_causal_timeline,
    record_event,
    render_diagnoses,
    seq_frontier,
)
from repro.core import DistributedDataParallel
from repro.utils import manual_seed

WORLD = 4


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry off and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _train(rank, iterations=5, width=96, bucket_cap_mb=0.02):
    """One rank of a multi-bucket DDP loop; returns ddp_stats()."""
    manual_seed(3)
    net = nn.Sequential(
        nn.Linear(32, width), nn.ReLU(), nn.Linear(width, width), nn.ReLU(),
        nn.Linear(width, 8),
    )
    ddp = DistributedDataParallel(net, bucket_cap_mb=bucket_cap_mb)
    opt = optim.SGD(ddp.parameters(), lr=0.01)
    loss_fn = nn.CrossEntropyLoss()
    rng = np.random.default_rng(rank)
    for _ in range(iterations):
        inp = Tensor(rng.standard_normal((16, 32)))
        exp = rng.integers(0, 8, 16)
        opt.zero_grad()
        loss_fn(ddp(inp), exp).backward()
        opt.step()
    return ddp.ddp_stats()


# ----------------------------------------------------------------------
# event log + causal stitching (unit)
# ----------------------------------------------------------------------
class TestEventLog:
    def test_ring_is_bounded_and_counts_drops(self):
        log = EventLog(rank=0, capacity=8)
        for seq in range(12):
            log.record("start", group=0, seq=seq)
        assert log.depth() == 8
        assert log.dropped == 4
        assert [e.seq for e in log.events()] == list(range(4, 12))

    def test_merge_stitches_by_group_seq_and_measures_skew(self):
        logs = {rank: EventLog(rank=rank) for rank in (0, 1)}
        logs[0].record("start", t=1.00, group=0, seq=5, op="allreduce", bucket=2)
        logs[1].record("start", t=1.08, group=0, seq=5, op="allreduce")
        logs[0].record("complete", t=1.20, group=0, seq=5)
        logs[1].record("heartbeat", t=0.5)  # no trace context
        timeline = merge_causal_timeline(logs)
        keyed = [r for r in timeline if r["seq"] is not None]
        assert len(keyed) == 1
        record = keyed[0]
        assert record["ranks"] == [0, 1]
        assert record["op"] == "allreduce" and record["bucket"] == 2
        assert record["start_skew_s"] == pytest.approx(0.08)
        assert [e["kind"] for e in record["events"]] == [
            "start", "start", "complete"
        ]
        loose = [r for r in timeline if r["seq"] is None]
        assert len(loose) == 1 and loose[0]["events"][0]["kind"] == "heartbeat"

    def test_seq_frontier_tracks_highest_started_seq(self):
        logs = {rank: EventLog(rank=rank) for rank in (0, 1)}
        for seq in range(6):
            logs[0].record("start", group=0, seq=seq)
        logs[1].record("start", group=0, seq=1)
        logs[1].record("schedule", group=0, seq=9)  # scheduled != started
        assert seq_frontier(logs) == {0: {0: 5, 1: 1}}


# ----------------------------------------------------------------------
# detectors over synthetic signals (unit)
# ----------------------------------------------------------------------
def _snap(rank, counters=None, histograms=None):
    return {
        "rank": rank,
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
    }


class TestDetectors:
    def test_straggler_needs_multiple_reporters(self):
        snaps = [
            _snap(0, {"comm.recv_stall_s.from_rank_1": 0.5}),
            _snap(1),
            _snap(2, {"comm.recv_stall_s.from_rank_1": 0.4}),
            _snap(3, {"comm.recv_stall_s.from_rank_0": 0.05}),
        ]
        diagnoses = analyze_snapshots(snaps)
        assert [d.kind for d in diagnoses] == [PERSISTENT_STRAGGLER]
        straggler = diagnoses[0]
        assert straggler.culprit_rank == 1
        assert straggler.evidence["reporters"] == [0, 2]
        assert straggler.confidence > 0.9

    def test_single_reporter_is_a_slow_link(self):
        snaps = [
            _snap(0),
            _snap(2, {"comm.recv_stall_s.from_rank_3": 0.6}),
        ]
        diagnoses = analyze_snapshots(snaps)
        assert [d.kind for d in diagnoses] == [SLOW_LINK]
        assert diagnoses[0].culprit_edge == (3, 2)

    def test_stall_below_floor_or_dominance_stays_silent(self):
        # Under the absolute floor: silence.
        assert analyze_snapshots(
            [_snap(0, {"comm.recv_stall_s.from_rank_1": 0.1})]
        ) == []
        # Over the floor but spread evenly across sources: silence.
        assert analyze_snapshots(
            [
                _snap(0, {"comm.recv_stall_s.from_rank_1": 0.5,
                          "comm.recv_stall_s.from_rank_2": 0.45}),
            ]
        ) == []

    def test_retransmit_storm_fires_on_rate_not_raw_count(self):
        base = {"health.collectives_accounted": 20.0}
        storm = dict(base, **{"transport.retries": 18.0,
                              "transport.retransmits": 14.0})
        diagnoses = analyze_snapshots([_snap(0, base), _snap(2, storm)])
        assert [d.kind for d in diagnoses] == [RETRANSMIT_STORM]
        assert diagnoses[0].culprit_rank == 2
        assert diagnoses[0].evidence["total_storm_events"] == 32
        # Same raw count over a long healthy run: below the per-collective
        # rate gate, so no diagnosis.
        long_run = dict(storm, **{"health.collectives_accounted": 500.0})
        assert analyze_snapshots([_snap(0, base), _snap(2, long_run)]) == []

    def test_overlap_collapse_compares_late_to_own_early_mean(self):
        collapsed = _snap(1, histograms={
            "iteration.overlap_ratio_dist": {
                "count": 12, "samples": [0.6] * 6 + [0.1] * 6,
            }
        })
        diagnoses = analyze_snapshots([collapsed])
        assert [d.kind for d in diagnoses] == [OVERLAP_COLLAPSE]
        assert diagnoses[0].culprit_rank == 1
        # A rank that never overlapped well has nothing to collapse from.
        never_good = _snap(1, histograms={
            "iteration.overlap_ratio_dist": {
                "count": 12, "samples": [0.1] * 12,
            }
        })
        assert analyze_snapshots([never_good]) == []

    def test_desync_precursor_reads_the_live_event_frontier(self):
        for seq in range(20):
            record_event(0, "start", group=0, seq=seq)
        record_event(1, "start", group=0, seq=2)
        diagnoses = analyze_snapshots()
        assert [d.kind for d in diagnoses] == [DESYNC_PRECURSOR]
        assert diagnoses[0].culprit_rank == 1
        assert diagnoses[0].evidence["spread"] == 17

    def test_render_and_as_dict(self):
        assert render_diagnoses([]) == "no anomalies detected\n"
        diagnosis = Diagnosis(
            kind=SLOW_LINK, summary="edge 0→2 is slow",
            culprit_edge=(0, 2), confidence=0.87654, evidence={"x": 1},
        )
        rendered = render_diagnoses([diagnosis])
        assert "slow_link" in rendered and "confidence 0.88" in rendered
        payload = diagnosis.as_dict()
        assert payload["culprit_edge"] == [0, 2]
        assert payload["confidence"] == 0.877
        json.dumps(payload)


# ----------------------------------------------------------------------
# efficiency accounting on a live healthy run
# ----------------------------------------------------------------------
class TestEfficiencyAccounting:
    def test_health_section_and_metrics_populated(self):
        telemetry.enable()
        stats = run_world(WORLD, _train, backend="gloo", timeout=60.0)
        health = stats[0]["health"]
        assert health["enabled"]
        assert health["collectives_accounted"] > 0
        busbw = health["achieved_busbw_gbps"]
        assert busbw is not None and busbw["mean"] > 0
        util = health["chunk_pipeline_utilization"]
        assert util is not None and 0 < util["mean"] <= 1.0
        latency = health["collective_latency_s"]
        assert latency["count"] == health["collectives_accounted"]
        assert health["recv_stall_s"] >= 0.0
        assert health["event_log_depth"] > 0
        # gloo has a cost model, so the expectation ratio rides along.
        assert health["model_efficiency"] is not None
        assert health["diagnoses"] == []  # healthy run stays silent
        json.dumps(health)

    def test_lifecycle_events_stitch_across_all_ranks(self):
        telemetry.enable()
        run_world(WORLD, _train, backend="gloo", timeout=60.0)
        timeline = [r for r in merge_causal_timeline() if r["seq"] is not None]
        assert timeline
        allreduces = [r for r in timeline if r["op"] == "allreduce"]
        assert allreduces
        for record in allreduces:
            assert record["ranks"] == list(range(WORLD))
            kinds = {e["kind"] for e in record["events"]}
            assert {"schedule", "start", "complete"} <= kinds
            assert record["start_skew_s"] >= 0.0
            assert record["t_last"] >= record["t_first"]
        # Everyone finished the same collectives: frontier spread is 0.
        for per_rank in seq_frontier().values():
            assert len(set(per_rank.values())) == 1

    def test_prometheus_carries_the_health_metrics(self):
        from repro.telemetry.observatory import prometheus_text

        telemetry.enable()
        run_world(WORLD, _train, backend="gloo", timeout=60.0)
        text = prometheus_text()
        assert "repro_comm_achieved_busbw_gbps" in text
        assert "repro_comm_chunk_pipeline_utilization" in text
        assert "repro_health_collectives_accounted_total" in text

    def test_disabled_accounting_records_nothing(self):
        stats = run_world(WORLD, _train, backend="gloo", timeout=60.0)
        health = stats[0]["health"]
        assert not health["enabled"]
        assert health["collectives_accounted"] == 0
        assert health["achieved_busbw_gbps"] is None
        assert health["event_log_depth"] == 0
        assert health["diagnoses"] == []


# ----------------------------------------------------------------------
# the seeded fault matrix — injected fault => correct attribution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
class TestFaultMatrix:
    def test_slow_rank_attributed_as_persistent_straggler(self, seed):
        telemetry.enable()
        plan = FaultPlan([slow_rank(1, seconds=0.01)], seed=seed)
        run_world(WORLD, _train, backend="gloo", timeout=60.0, fault_plan=plan)
        diagnoses = analyze_snapshots()
        assert {d.kind for d in diagnoses} == {PERSISTENT_STRAGGLER}
        assert diagnoses[0].culprit_rank == 1
        assert len(diagnoses[0].evidence["reporters"]) >= 2

    def test_drop_attributed_as_retransmit_storm(self, seed):
        telemetry.enable()
        hub = ReliableTransportHub(
            WORLD, default_timeout=30.0,
            retry=RetryPolicy(base_backoff=0.001), seed=seed,
        )
        plan = FaultPlan([drop(rank=0, dst=2, probability=0.5)], seed=seed)
        run_world(WORLD, _train, backend="gloo", timeout=60.0,
                  hub=hub, fault_plan=plan)
        kinds = {d.kind: d for d in analyze_snapshots()}
        assert RETRANSMIT_STORM in kinds
        storm = kinds[RETRANSMIT_STORM]
        assert storm.culprit_rank == 2
        assert storm.culprit_edge == (0, 2)
        assert PERSISTENT_STRAGGLER not in kinds

    def test_corrupt_attributed_as_retransmit_storm(self, seed):
        telemetry.enable()
        hub = ReliableTransportHub(
            WORLD, default_timeout=30.0,
            retry=RetryPolicy(base_backoff=0.001), seed=seed,
        )
        plan = FaultPlan([corrupt(rank=0, dst=2, probability=0.5)], seed=seed)
        run_world(WORLD, _train, backend="gloo", timeout=60.0,
                  hub=hub, fault_plan=plan)
        kinds = {d.kind: d for d in analyze_snapshots()}
        assert RETRANSMIT_STORM in kinds
        assert kinds[RETRANSMIT_STORM].culprit_rank == 2

    def test_fault_free_run_yields_zero_diagnoses(self, seed):
        telemetry.enable()
        hub = ReliableTransportHub(
            WORLD, default_timeout=30.0,
            retry=RetryPolicy(base_backoff=0.001), seed=seed,
        )
        run_world(WORLD, _train, backend="gloo", timeout=60.0, hub=hub)
        assert analyze_snapshots() == []


class TestSlowLinkAttribution:
    def test_single_reporter_delay_attributed_to_the_edge(self):
        # The injector's delay sleeps on the sender thread, so in a big
        # world an "edge" delay transitively slows every send from that
        # rank — correctly read as a straggler.  With one peer there is
        # only one possible reporter, and the engine must say *link*,
        # not rank: one witness cannot establish a rank-wide pattern.
        telemetry.enable()
        plan = FaultPlan([delay(0.02, rank=1, dst=0)], seed=0)
        run_world(2, _train, backend="gloo", timeout=60.0, fault_plan=plan)
        kinds = {d.kind: d for d in analyze_snapshots()}
        assert SLOW_LINK in kinds
        assert kinds[SLOW_LINK].culprit_edge == (1, 0)
        assert PERSISTENT_STRAGGLER not in kinds


# ----------------------------------------------------------------------
# offline: sampler ticks and the healthctl CLI
# ----------------------------------------------------------------------
def _tick(generation, per_rank):
    return {
        "generation": generation,
        "time_unix": 0.0,
        "ranks": [s["rank"] for s in per_rank],
        "aggregate": {},
        "per_rank": per_rank,
    }


def _storm_ticks():
    per_rank = [
        _snap(0, {"health.collectives_accounted": 20.0}),
        _snap(2, {"health.collectives_accounted": 20.0,
                  "transport.retries": 25.0, "transport.retransmits": 15.0}),
    ]
    return [_tick(0, per_rank)]


class TestOfflineAnalysis:
    def test_analyze_ticks_reports_the_storm(self):
        report = analyze_ticks(_storm_ticks())
        assert report["ticks"] == 1 and report["ranks"] == [0, 2]
        assert report["storm_events"] == 40
        assert [d["kind"] for d in report["diagnoses"]] == [RETRANSMIT_STORM]
        assert report["diagnoses"][0]["culprit_rank"] == 2

    def test_analyze_ticks_follows_overlap_gauge_transitions(self):
        ticks = []
        for generation, value in enumerate([0.6, 0.6, 0.6, 0.05, 0.05, 0.05]):
            snap = _snap(0)
            snap["gauges"]["iteration.overlap_ratio"] = value
            ticks.append(_tick(generation, [snap]))
        # Repeated gauge readings collapse to transitions: only 2 points,
        # under the sample floor — no diagnosis from tick cadence alone.
        assert analyze_ticks(ticks)["diagnoses"] == []

    def test_empty_input(self):
        assert analyze_ticks([]) == {"ticks": 0, "ranks": [], "diagnoses": []}


def _load_healthctl():
    path = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                        "tools", "healthctl.py")
    spec = importlib.util.spec_from_file_location("healthctl", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestHealthctlCLI:
    def test_report_and_fail_on_diagnosis_gate(self, tmp_path, capsys):
        healthctl = _load_healthctl()
        dump = tmp_path / "metrics.jsonl"
        dump.write_text(
            "\n".join(json.dumps(t) for t in _storm_ticks()) + "\n"
        )
        out_json = tmp_path / "report.json"
        assert healthctl.main([str(dump), "--json", str(out_json)]) == 0
        printed = capsys.readouterr().out
        assert "retransmit_storm" in printed
        report = json.loads(out_json.read_text())
        assert report["diagnoses"][0]["culprit_rank"] == 2
        # The CI gate: same dump, --fail-on-diagnosis exits 1.
        assert healthctl.main([str(dump), "--fail-on-diagnosis"]) == 1

    def test_clean_dump_passes_the_gate(self, tmp_path):
        healthctl = _load_healthctl()
        dump = tmp_path / "clean.jsonl"
        clean = _tick(0, [_snap(0, {"health.collectives_accounted": 30.0})])
        dump.write_text(json.dumps(clean) + "\n")
        assert healthctl.main([str(dump), "--fail-on-diagnosis"]) == 0

    def test_threshold_overrides_and_bad_inputs(self, tmp_path):
        healthctl = _load_healthctl()
        dump = tmp_path / "metrics.jsonl"
        dump.write_text(
            "\n".join(json.dumps(t) for t in _storm_ticks()) + "\n"
        )
        # Raising the storm floor above the event count silences it.
        assert healthctl.main(
            [str(dump), "--storm-min-events", "1000", "--fail-on-diagnosis"]
        ) == 0
        assert healthctl.main([str(tmp_path / "missing.jsonl")]) == 2
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n")
        assert healthctl.main([str(garbage)]) == 2
