"""The online autotuner: knob registry, cost prior, search policy, live runs."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.autotune import (
    CONVERGED,
    KNOBS,
    SearchPolicy,
    TunedConfig,
    clamp_config,
    default_config,
    knob_table,
    validate_config,
)
from repro.autotune.cost_prior import estimate_iteration_time, prune_candidates
from repro.autotune.knobs import candidate_grid, neighbors
from repro.core import DistributedDataParallel
from repro.optim import SGD
from repro.simnet.cost_model import cost_model_for
from repro.utils import manual_seed

from conftest import run_world, small_classifier

RNG = np.random.default_rng(11)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


def config_in_safe_ranges(config_dict) -> bool:
    try:
        validate_config(TunedConfig(**config_dict))
        return True
    except ValueError:
        return False


class TestKnobRegistry:
    def test_default_config_is_valid(self):
        validate_config(default_config())

    def test_clamp_pulls_into_range(self):
        wild = TunedConfig(
            bucket_cap_mb=1000.0, chunk_bytes=1, num_streams=99, algorithm="naive"
        )
        clamped = clamp_config(wild)
        validate_config(clamped)
        assert clamped.bucket_cap_mb == 200.0
        assert clamped.chunk_bytes == 64 * 1024
        assert clamped.num_streams == 4
        assert clamped.algorithm == "ring"  # categorical falls back to default

    def test_validate_names_every_offender(self):
        bad = TunedConfig(bucket_cap_mb=0.1, num_streams=9)
        with pytest.raises(ValueError) as err:
            validate_config(bad)
        assert "bucket_cap_mb" in str(err.value)
        assert "num_streams" in str(err.value)

    def test_naive_not_a_choice(self):
        assert "naive" not in KNOBS["algorithm"].choices

    def test_grid_is_bounded_and_unique(self):
        grid = candidate_grid(default_config(), tune_comm_hook=True)
        assert len(grid) == len(set(grid))
        assert len(grid) <= 1200
        for config in grid:
            validate_config(config)

    def test_neighbors_stay_in_safe_ranges(self):
        # Even from a corner of the space, every move is clamped legal.
        corner = TunedConfig(
            bucket_cap_mb=200.0, chunk_bytes=8 * 1024 * 1024, num_streams=4,
            algorithm="tree",
        )
        moves = neighbors(corner, tune_comm_hook=True)
        assert moves
        for move in moves:
            validate_config(move)

    def test_hook_dimension_gated(self):
        assert all(
            c.comm_hook is None for c in candidate_grid(default_config())
        )
        assert all(
            c.comm_hook == default_config().comm_hook
            for c in neighbors(default_config())
        )

    def test_knob_table_covers_registry(self):
        rows = {row["knob"] for row in knob_table()}
        assert rows == set(KNOBS)


class TestCostPrior:
    def test_more_ranks_cost_more(self):
        config = default_config()
        t2 = estimate_iteration_time(config, 100e6, 2)
        t8 = estimate_iteration_time(config, 100e6, 8)
        assert t8 > t2

    def test_compression_cheaper_on_big_models(self):
        base = default_config()
        dense = estimate_iteration_time(base, 400e6, 8)
        fp16 = estimate_iteration_time(base.replace(comm_hook="fp16"), 400e6, 8)
        assert fp16 < dense

    def test_tiny_buckets_predicted_slow(self):
        # The acceptance scenario: 1 MB buckets at world 8 must score
        # worse than the 25 MB default on a 100 MB model.
        base = default_config()
        tiny = estimate_iteration_time(base.replace(bucket_cap_mb=1.0), 100e6, 8)
        default = estimate_iteration_time(base, 100e6, 8)
        assert tiny > default

    def test_prune_is_deterministic_and_bounded(self):
        grid = candidate_grid(default_config())
        once = prune_candidates(grid, 100e6, 8, keep=6)
        twice = prune_candidates(grid, 100e6, 8, keep=6)
        assert once == twice
        assert len(once) == 6


def simulate(policy, measure, start, max_windows=60, signals=None):
    """Drive a policy with a deterministic measurement function."""
    config = start
    for _ in range(max_windows):
        config = policy.observe(measure(config), signals or {})
        if policy.state == CONVERGED and policy.windows > 5:
            break
    return config


class TestPolicyConvergence:
    """The ISSUE acceptance scenario, at policy level: deterministic
    cost-model 'measurements' so the test is immune to CI timing noise
    (live mechanics are covered separately below)."""

    WORLD = 8
    MODEL_BYTES = 100e6
    BACKWARD_S = 0.02

    def measure(self, config):
        return estimate_iteration_time(
            config,
            self.MODEL_BYTES,
            self.WORLD,
            self.BACKWARD_S,
            cost_model=cost_model_for("gloo"),
        )

    def test_converges_near_optimum_within_30_windows(self):
        start = default_config().replace(bucket_cap_mb=1.0)  # provably suboptimal
        policy = SearchPolicy(
            start, model_bytes=self.MODEL_BYTES, world_size=self.WORLD, seed=0
        )
        simulate(policy, self.measure, start)
        assert policy.state == CONVERGED
        assert policy.windows <= 30
        optimum = min(self.measure(c) for c in candidate_grid(start))
        assert policy.best_time <= optimum * 1.10
        # ...and it actually moved off the bad default.
        assert policy.best_config.bucket_cap_mb > 1.0

    def test_every_visited_config_in_safe_ranges(self):
        start = default_config().replace(bucket_cap_mb=1.0)
        policy = SearchPolicy(
            start, model_bytes=self.MODEL_BYTES, world_size=self.WORLD, seed=3,
            tune_comm_hook=True,
        )
        simulate(policy, self.measure, start)
        assert policy.history
        for entry in policy.history:
            assert config_in_safe_ranges(entry["config"])

    def test_identical_inputs_identical_walk(self):
        """The cross-rank determinism contract: same seed + same
        measurements => the exact same config sequence."""
        start = default_config()
        walks = []
        for _ in range(2):
            policy = SearchPolicy(
                start, model_bytes=self.MODEL_BYTES, world_size=self.WORLD, seed=7
            )
            config = start
            walk = []
            for _ in range(25):
                config = policy.observe(self.measure(config), {})
                walk.append(config)
            walks.append(walk)
        assert walks[0] == walks[1]

    def test_rollback_guard_reverts_regressions(self):
        """A config the prior loves but that measures terribly must be
        rolled back, never adopted."""
        start = default_config()
        poison = start.replace(bucket_cap_mb=100.0)

        def measure(config):
            if config.bucket_cap_mb == 100.0:
                return 10.0  # catastrophic in reality
            return self.measure(config)

        policy = SearchPolicy(
            start, model_bytes=self.MODEL_BYTES, world_size=self.WORLD, seed=0
        )
        simulate(policy, measure, start)
        assert policy.best_config.bucket_cap_mb != 100.0
        # The poison config was tried (the prior can't know) but rolled back.
        if any(e["config"]["bucket_cap_mb"] == 100.0 for e in policy.history):
            assert policy.rollbacks >= 1
        assert policy.best_time <= measure(start)

    def test_drift_triggers_retune(self):
        """A frozen config whose measured time degrades (topology
        changed, link went slow) re-enters the sweep."""
        start = default_config()
        policy = SearchPolicy(
            start, model_bytes=self.MODEL_BYTES, world_size=self.WORLD, seed=0,
            drift_patience=2,
        )
        simulate(policy, self.measure, start)
        assert policy.state == CONVERGED
        config = policy.active_config
        for _ in range(6):
            config = policy.observe(self.measure(config) * 3.0, {})
            if policy.retunes:
                break
        assert policy.retunes >= 1
        assert policy.state != CONVERGED


class TestLiveRetune:
    """Integration: the knobs actually move on a live group."""

    def test_set_num_streams_grow_and_shrink(self):
        def body(rank):
            from repro.comm.distributed import get_context

            group = get_context().default_group
            data = np.ones(64)
            group.allreduce(data)
            group.set_num_streams(3)
            assert len(group._workers) == 3
            group.allreduce(data)
            group.set_num_streams(1)
            assert len(group._workers) == 1
            group.allreduce(data)
            return float(data[0])

        assert run_world(2, body, backend="gloo") == [8.0, 8.0]

    def test_set_algorithm_validates(self):
        def body(rank):
            from repro.comm.distributed import get_context

            group = get_context().default_group
            group.set_algorithm("tree")
            data = np.full(16, float(rank + 1))
            group.allreduce(data)
            with pytest.raises(ValueError):
                group.set_algorithm("bogus")
            return float(data[0])

        assert run_world(2, body, backend="gloo") == [3.0, 3.0]

    def test_set_bucket_cap_relayouts_and_training_continues(self):
        def body(rank):
            manual_seed(7)
            model = small_classifier()
            ddp = DistributedDataParallel(model, bucket_cap_mb=25.0)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            counts = []
            for step in range(6):
                if step == 3:
                    ddp.set_bucket_cap_mb(1e-4)  # force many tiny buckets
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
                counts.append(len(ddp.reducer.buckets))
            return counts, {
                n: p.data.copy() for n, p in model.named_parameters()
            }

        results = run_world(2, body, backend="gloo", timeout=30)
        counts0, params0 = results[0]
        counts1, params1 = results[1]
        assert counts0 == counts1
        assert counts0[-1] > counts0[0]  # the relayout actually happened
        for name in params0:  # replicas stayed in lockstep through it
            assert np.allclose(params0[name], params1[name])

    def test_live_autotuned_training(self):
        """End-to-end: tuner runs, applies changes, every rank lands on
        the identical config, every applied config is in safe ranges,
        and training still converges."""

        def body(rank):
            manual_seed(7)
            model = small_classifier()
            ddp = DistributedDataParallel(
                model,
                bucket_cap_mb=1.0,
                autotune=True,
                autotune_options={
                    "window_iters": 2,
                    "warmup_windows": 1,
                    "sweep_keep": 3,
                    "seed": 1,
                },
            )
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            losses = []
            for _ in range(40):
                opt.zero_grad()
                loss = loss_fn(ddp(Tensor(X[shard])), Y[shard])
                loss.backward()
                opt.step()
                losses.append(loss.item())
            stats = ddp.ddp_stats()["autotune"]
            ddp.autotuner.close()
            return losses, stats

        results = run_world(2, body, backend="gloo", timeout=60)
        stats0, stats1 = results[0][1], results[1][1]
        assert stats0["windows_closed"] > 3
        assert stats0["applied_changes"] >= 1
        # Decision determinism across ranks:
        assert stats0["active_config"] == stats1["active_config"]
        assert stats0["best_config"] == stats1["best_config"]
        assert stats0["applied_log"] == stats1["applied_log"]
        # Safe-range guarantee on everything that was ever applied:
        for entry in stats0["applied_log"]:
            assert config_in_safe_ranges(entry["config"])
        # The knob taxonomy rides along in the report.
        assert {row["knob"] for row in stats0["knobs"]} == set(KNOBS)
        # Training still learns through live retunes.
        losses = results[0][0]
        assert losses[-1] < losses[0]

    def test_stats_section_absent_without_autotune(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return ddp.ddp_stats()["autotune"]

        assert run_world(2, body, backend="gloo") == [None, None]
