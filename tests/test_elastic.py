"""Elastic recovery: kill ranks mid-iteration, shrink, and keep training.

The crash is placed with collective-scoped fault rules: with four
single-parameter buckets, ``after=iteration*4 + b`` kills the victim
exactly as it issues bucket ``b``'s AllReduce of that iteration — every
bucket boundary is a tested death site.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.optim import SGD
from repro.resilience import (
    ElasticConfig,
    FaultPlan,
    RankFailedError,
    crash_rank,
    drop,
    run_elastic,
)

from conftest import small_classifier

#: small_classifier has 4 parameter tensors; this cap gives one bucket
#: per parameter, so each iteration issues exactly 4 bucket AllReduces.
BUCKETS = 4
DDP_KWARGS = {"bucket_cap_mb": 0.0001}

_rng = np.random.default_rng(0)
X = _rng.standard_normal((24, 6))
Y = _rng.integers(0, 4, 24)
_loss_fn = nn.CrossEntropyLoss()


def setup(ctx):
    model = small_classifier()  # seeded: identical on every rank
    return model, SGD(model.parameters(), lr=0.05)


def step(ctx, model, opt, iteration):
    shard = slice(ctx.rank * 4, (ctx.rank + 1) * 4)
    opt.zero_grad()
    loss = _loss_fn(model(Tensor(X[shard])), Y[shard])
    loss.backward()
    opt.step()
    return float(loss.data)


def config(tmp_path, **overrides):
    defaults = dict(
        policy="shrink",
        checkpoint_dir=str(tmp_path),
        checkpoint_every=1,
        timeout=8.0,
        ddp_kwargs=dict(DDP_KWARGS),
    )
    defaults.update(overrides)
    return ElasticConfig(**defaults)


class TestBucketBoundaryKills:
    @pytest.mark.parametrize("bucket", range(BUCKETS))
    def test_kill_at_every_bucket_boundary(self, tmp_path, bucket):
        """Rank 2 dies issuing bucket ``bucket``'s AllReduce of
        iteration 1; survivors resume from the iteration-0 checkpoint."""
        plan = FaultPlan([
            crash_rank(2, scope="collective", op="allreduce",
                       after=1 * BUCKETS + bucket, times=1),
        ])
        res = run_elastic(3, setup, step, total_iterations=4,
                          config=config(tmp_path), fault_plan=plan)
        assert res.completed
        assert res.deaths == [2]
        assert res.final_world_size == 2
        assert res.iterations == 4
        assert len(res.generations) == 2
        # The generation that died never reported completion.
        assert res.generations[0]["completed"] is False
        assert res.generations[1]["completed"] is True


class TestShrinkConvergence:
    def test_prestate_kill_matches_fresh_small_world_exactly(self, tmp_path):
        """A death before the first checkpoint restarts from scratch at
        the smaller world — numerically identical to never having had
        the extra rank."""
        plan = FaultPlan([
            crash_rank(2, scope="collective", op="allreduce",
                       after=1, times=1),  # iteration 0, bucket 1
        ])
        res = run_elastic(3, setup, step, total_iterations=6,
                          config=config(tmp_path), fault_plan=plan)
        baseline = run_elastic(
            2, setup, step, total_iterations=6,
            config=config(tmp_path / "baseline"),
        )
        assert res.completed and baseline.completed
        assert res.generations[0]["losses"] == []  # no iteration finished
        assert np.allclose(res.losses, baseline.losses)

    def test_mid_run_shrink_converges_to_small_world_loss(self, tmp_path):
        """Killing a rank mid-run (with drops on top) still converges to
        the no-fault shrunken-world loss within tolerance."""
        plan = FaultPlan([
            drop(probability=0.01),
            crash_rank(2, scope="collective", op="allreduce",
                       after=3 * BUCKETS + 2, times=1),
        ], seed=0)
        res = run_elastic(3, setup, step, total_iterations=10,
                          config=config(tmp_path), fault_plan=plan)
        baseline = run_elastic(
            2, setup, step, total_iterations=10,
            config=config(tmp_path / "baseline"),
        )
        assert res.completed
        assert res.deaths == [2]
        assert res.losses[-1] < res.losses[0]  # still training
        assert abs(res.final_loss - baseline.final_loss) < 0.05


class TestPolicies:
    def test_fail_policy_raises_rank_failed(self, tmp_path):
        plan = FaultPlan([
            crash_rank(1, scope="collective", op="allreduce",
                       after=2, times=1),
        ])
        with pytest.raises(RankFailedError) as excinfo:
            run_elastic(2, setup, step, total_iterations=4,
                        config=config(tmp_path, policy="fail"),
                        fault_plan=plan)
        assert excinfo.value.spots == [1]

    def test_pause_and_wait_restarts_at_full_world(self, tmp_path):
        plan = FaultPlan([
            crash_rank(1, scope="collective", op="allreduce",
                       after=BUCKETS, times=1),
        ])
        res = run_elastic(
            3, setup, step, total_iterations=4,
            config=config(tmp_path, policy="pause_and_wait"),
            fault_plan=plan,
        )
        assert res.completed
        assert res.final_world_size == 3  # dead spot was "replaced"
        assert len(res.generations) == 2

    def test_shrink_below_min_world_size_raises(self, tmp_path):
        plan = FaultPlan([
            crash_rank(1, scope="collective", op="allreduce",
                       after=2, times=1),
        ])
        with pytest.raises(RankFailedError, match="min_world_size"):
            run_elastic(2, setup, step, total_iterations=4,
                        config=config(tmp_path, min_world_size=2),
                        fault_plan=plan)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ElasticConfig(policy="retry-forever")


class TestElasticBookkeeping:
    def test_no_fault_run_is_single_generation(self, tmp_path):
        res = run_elastic(2, setup, step, total_iterations=3,
                          config=config(tmp_path))
        assert res.completed
        assert len(res.generations) == 1
        assert res.deaths == []
        assert len(res.losses) == 3

    def test_checkpoint_carries_cursor_across_generations(self, tmp_path):
        """Iterations completed before the death are not re-run."""
        plan = FaultPlan([
            crash_rank(2, scope="collective", op="allreduce",
                       after=2 * BUCKETS, times=1),  # iteration 2, bucket 0
        ])
        res = run_elastic(3, setup, step, total_iterations=5,
                          config=config(tmp_path), fault_plan=plan)
        assert res.completed
        gen0, gen1 = res.generations
        assert gen0["end_iteration"] == 2
        assert gen1["end_iteration"] == 5
        assert len(res.losses) == 5  # 2 from gen 0 + 3 from gen 1
