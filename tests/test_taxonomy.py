"""Table 1 taxonomy."""

import pytest

from repro.core.taxonomy import (
    TRAINING_SOLUTIONS,
    render_table1,
    solutions_supporting,
)


class TestTable1:
    def test_fifteen_solutions(self):
        assert len(TRAINING_SOLUTIONS) == 15

    def test_pt_ddp_row_matches_paper(self):
        ddp = next(s for s in TRAINING_SOLUTIONS if s.name == "PT DDP")
        assert ddp.schemes() == "SID"

    def test_zero_row_matches_paper(self):
        zero = next(s for s in TRAINING_SOLUTIONS if s.name == "ZeRO")
        assert zero.schemes() == "SIDM"

    def test_pipedream_row(self):
        pd = next(s for s in TRAINING_SOLUTIONS if s.name == "PipeDream")
        assert pd.schemes() == "SACDM"

    def test_every_solution_has_a_scheme(self):
        assert all(s.schemes() for s in TRAINING_SOLUTIONS)

    def test_render_contains_all_names(self):
        text = render_table1()
        for solution in TRAINING_SOLUTIONS:
            assert solution.name in text

    def test_render_header(self):
        assert render_table1().splitlines()[0].split()[-6:] == list("SACIDM")

    def test_solutions_supporting(self):
        data_parallel = solutions_supporting("D")
        assert "PT DDP" in data_parallel and "Horovod" in data_parallel
        assert "GPipe" not in data_parallel
        with pytest.raises(ValueError):
            solutions_supporting("Z")

    def test_synchronous_majority(self):
        assert len(solutions_supporting("S")) >= 12
