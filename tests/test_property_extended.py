"""Extended property-based coverage: DDP equivalence over random
architectures, compression error bounds, ZeRO partitions, hierarchical
allreduce, simulator invariants."""

import threading

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.autograd import Tensor
from repro.comm import algorithms as alg
from repro.comm.transport import TransportHub
from repro.simulation import SimulationConfig, TrainingSimulator
from repro.simulation.models import resnet50_profile
from repro.utils import manual_seed


class TestDdpEquivalenceProperty:
    @settings(max_examples=5, deadline=None)
    @given(
        hidden=st.lists(st.integers(2, 12), min_size=1, max_size=3),
        world=st.sampled_from([2, 4]),
        lr=st.floats(0.001, 0.2),
        seed=st.integers(0, 1000),
    )
    def test_random_mlp_ddp_matches_local(self, hidden, world, lr, seed):
        """For arbitrary MLP shapes, worlds, and learning rates, DDP
        training equals local full-batch training."""
        from repro.comm import run_distributed
        from repro.core import DistributedDataParallel
        from repro.optim import SGD

        rng = np.random.default_rng(seed)
        batch = world * 2
        X = rng.standard_normal((batch, 5))
        Y = rng.integers(0, 3, batch)
        loss_fn = nn.CrossEntropyLoss()

        def make_model():
            manual_seed(seed)
            layers = []
            previous = 5
            for width in hidden:
                layers += [nn.Linear(previous, width), nn.Tanh()]
                previous = width
            layers.append(nn.Linear(previous, 3))
            return nn.Sequential(*layers)

        reference = make_model()
        opt = SGD(reference.parameters(), lr=lr)
        for _ in range(2):
            opt.zero_grad()
            loss_fn(reference(Tensor(X)), Y).backward()
            opt.step()
        expected = reference.state_dict()

        def body(rank):
            model = make_model()
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.00005)
            opt = SGD(ddp.parameters(), lr=lr)
            per = batch // world
            shard = slice(rank * per, (rank + 1) * per)
            for _ in range(2):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        states = run_distributed(world, body, backend="gloo", timeout=20)
        for state in states:
            for name in expected:
                assert np.allclose(state[name], expected[name], atol=1e-8)


class TestHierarchicalAllreduceProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        world=st.integers(2, 10),
        group_size=st.integers(2, 5),
        size=st.integers(1, 30),
        seed=st.integers(0, 999),
    )
    def test_matches_sum(self, world, group_size, size, seed):
        rng = np.random.default_rng(seed)
        inputs = [rng.standard_normal(size) for _ in range(world)]
        expected = np.sum(inputs, axis=0)
        hub = TransportHub(world, default_timeout=10)
        outputs = [None] * world
        errors = []

        def body(rank):
            try:
                buf = inputs[rank].copy()
                alg.allreduce_hierarchical(
                    hub, list(range(world)), rank, buf, "sum",
                    tag="h", group_size=group_size,
                )
                outputs[rank] = buf
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=body, args=(r,)) for r in range(world)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
        assert not errors, errors
        for out in outputs:
            assert np.allclose(out, expected)


class TestCompressionErrorBounds:
    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(1e-6, 1e4), size=st.integers(1, 64), seed=st.integers(0, 999))
    def test_fp16_roundtrip_error_bounded(self, scale, size, seed):
        """fp16 wire encoding loses at most ~2^-10 relative precision."""
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(size) * scale
        roundtrip = values.astype(np.float16).astype(np.float64)
        finite = np.isfinite(roundtrip)
        assert finite.all() or scale > 1e4 / 2  # fp16 overflow only at huge scales
        err = np.abs(values[finite] - roundtrip[finite])
        # relative precision 2^-10, plus the fp16 subnormal floor for
        # magnitudes below ~6e-5
        subnormal_floor = float(np.finfo(np.float16).smallest_subnormal)
        assert np.all(err <= np.abs(values[finite]) * 2**-10 + subnormal_floor)


class TestZeroPartitionProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 100), min_size=1, max_size=20),
        world=st.integers(1, 6),
    )
    def test_partition_covers_and_balances(self, sizes, world):
        from repro.baselines.zero import ZeroRedundancyOptimizer
        from repro.nn.module import Parameter

        class _PG:
            def __init__(self, size, rank):
                self.size = size
                self.group_rank = rank

            def broadcast(self, tensor, src=0):
                pass

        params = [Parameter(np.zeros(s)) for s in sizes]
        owner_maps = []
        for rank in range(world):
            zro = ZeroRedundancyOptimizer(
                params, lambda shard: None, _PG(world, rank)
            )
            owner_maps.append(zro.owner_of)
        # identical on every rank, covers every parameter
        assert all(m == owner_maps[0] for m in owner_maps)
        assert set(owner_maps[0]) == set(range(len(params)))
        # load balance: no rank exceeds max single param + fair share
        loads = [0] * world
        for index, owner in owner_maps[0].items():
            loads[owner] += params[index].numel()
        fair = sum(sizes) / world
        assert max(loads) <= fair + max(sizes)


class TestSimulatorProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        world=st.sampled_from([2, 8, 16, 32, 64]),
        cap=st.sampled_from([1, 5, 25, 100]),
        backend=st.sampled_from(["nccl", "gloo"]),
        streams=st.sampled_from([1, 3]),
    )
    def test_overlap_never_hurts(self, world, cap, backend, streams):
        base = SimulationConfig(
            model=resnet50_profile(), world_size=world, backend=backend,
            bucket_cap_mb=cap, num_comm_streams=streams,
        )
        overlapped = TrainingSimulator(base).simulate_iteration(0).total
        boundary = TrainingSimulator(base.with_(overlap=False)).simulate_iteration(0).total
        assert overlapped <= boundary + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(
        world=st.sampled_from([2, 8, 32]),
        cap=st.sampled_from([1, 25]),
        backend=st.sampled_from(["nccl", "gloo"]),
    )
    def test_exposed_comm_never_exceeds_total(self, world, cap, backend):
        sim = TrainingSimulator(
            SimulationConfig(
                model=resnet50_profile(), world_size=world, backend=backend,
                bucket_cap_mb=cap,
            )
        )
        result = sim.simulate_iteration(0)
        assert 0 <= result.backward_comm_exposed <= result.backward_comm_total + 1e-12
