"""MPI backend, P2P, root collectives, DDP order tracing, layer-drop
coordination, adaptive precision, checkpointing."""

import os
import tempfile

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import get_context
from repro.core import DistributedDataParallel, comm_hooks
from repro.core.layer_drop import BroadcastLayerDrop, SeededLayerDrop
from repro.optim import SGD
from repro.utils import load_checkpoint, manual_seed, save_checkpoint

from conftest import run_world, small_classifier

RNG = np.random.default_rng(31)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


class TestMpiBackend:
    def test_allreduce(self):
        def body(rank):
            pg = get_context().default_group
            x = np.full(5, float(rank + 1))
            pg.allreduce(x)
            return x[0], pg.backend, pg.algorithm

        results = run_world(3, body, backend="mpi")
        assert results[0] == (6.0, "mpi", "tree")

    def test_ddp_training_on_mpi(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(3):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        states = run_world(2, body, backend="mpi")
        for name in states[0]:
            assert np.allclose(states[0][name], states[1][name])


class TestP2PAndRootCollectives:
    def test_send_recv(self):
        def body(rank):
            pg = get_context().default_group
            if rank == 0:
                pg.send(np.arange(4.0), dst=1, tag="hello")
                return None
            buf = np.zeros(4)
            pg.recv(buf, src=0, tag="hello")
            return buf.tolist()

        results = run_world(2, body, backend="gloo")
        assert results[1] == [0.0, 1.0, 2.0, 3.0]

    def test_reduce_to_root(self):
        def body(rank):
            pg = get_context().default_group
            x = np.full(3, float(rank + 1))
            pg.reduce(x, root=1)
            return x[0]

        results = run_world(3, body, backend="gloo")
        assert results[1] == 6.0  # only the root holds the full sum

    def test_gather(self):
        def body(rank):
            pg = get_context().default_group
            out = pg.gather(np.array([float(rank)]), root=0)
            return None if out is None else out.reshape(-1).tolist()

        results = run_world(3, body, backend="gloo")
        assert results[0] == [0.0, 1.0, 2.0]
        assert results[1] is None and results[2] is None

    def test_scatter(self):
        def body(rank):
            pg = get_context().default_group
            chunks = [np.full(2, float(i * 10)) for i in range(3)] if rank == 0 else None
            out = pg.scatter(chunks, root=0)
            return out.tolist()

        results = run_world(3, body, backend="gloo")
        assert results == [[0.0, 0.0], [10.0, 10.0], [20.0, 20.0]]


class TestDdpOrderTracing:
    def test_rebucket_happens_and_training_stays_correct(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(
                model,
                bucket_cap_mb=0.0001,
                trace_backward_order=True,
                rebucket_after_iterations=3,
            )
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(6):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.reducer.rebuilt_bucket_count, ddp.state_dict()

        # reference: same training without tracing
        def ref_body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.0001)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(6):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        traced = run_world(2, body, backend="gloo")
        reference = run_world(2, ref_body, backend="gloo")
        assert traced[0][0] == 1  # rebuilt exactly once
        for name in reference[0]:
            assert np.allclose(traced[0][1][name], reference[0][name], atol=1e-9)

    def test_rebucketed_layout_matches_observed_order(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(
                model,
                bucket_cap_mb=1000.0,  # one bucket: layout == order
                trace_backward_order=True,
                rebucket_after_iterations=3,
            )
            loss_fn = nn.CrossEntropyLoss()
            for _ in range(4):
                model.zero_grad()
                loss_fn(ddp(Tensor(X[:4])), Y[:4]).backward()
            (bucket,) = ddp.reducer.buckets
            return bucket.spec.param_indices

        layouts = run_world(2, body, backend="gloo")
        assert layouts[0] == layouts[1]
        # observed backward order for Sequential(Linear, ReLU, Linear):
        # last layer's (weight/bias) hooks fire first
        assert set(layouts[0][:2]) == {2, 3}

    def test_unstable_trace_skips_rebucketing(self):
        """A dynamic graph yields disagreeing traces; DDP must keep the
        reverse-definition layout instead of chasing noise."""
        from repro.models import BranchedModel

        def body(rank):
            manual_seed(4)
            model = BranchedModel(num_branches=2)
            ddp = DistributedDataParallel(
                model,
                find_unused_parameters=True,
                trace_backward_order=True,
                rebucket_after_iterations=3,
            )
            loss_fn = nn.CrossEntropyLoss()
            x = Tensor(np.ones((2, 8)))
            y = np.zeros(2, dtype=np.int64)
            for it in range(6):
                model.zero_grad()
                loss_fn(ddp(x, branch=it % 2), y).backward()
            return ddp.reducer.rebuilt_bucket_count

        counts = run_world(2, body, backend="gloo")
        assert counts == [0, 0]


class TestLayerDropCoordination:
    def test_seeded_plans_agree_across_ranks(self):
        def body(rank):
            coordinator = SeededLayerDrop(num_layers=6, drop_prob=0.4, seed=9)
            return [coordinator.next_plan() for _ in range(5)]

        plans = run_world(3, body)
        assert plans[0] == plans[1] == plans[2]

    def test_seeded_plans_vary_over_iterations(self):
        coordinator = SeededLayerDrop(num_layers=8, drop_prob=0.5, seed=0)
        plans = [tuple(coordinator.next_plan()) for _ in range(10)]
        assert len(set(plans)) > 1

    def test_at_least_one_layer_kept(self):
        coordinator = SeededLayerDrop(num_layers=3, drop_prob=0.99, seed=1)
        for _ in range(50):
            assert any(coordinator.next_plan())

    def test_broadcast_plans_agree(self):
        def body(rank):
            pg = get_context().default_group
            coordinator = BroadcastLayerDrop(pg, num_layers=5, drop_prob=0.5, seed=rank)
            return [coordinator.next_plan() for _ in range(4)]

        plans = run_world(2, body, backend="gloo")
        assert plans[0] == plans[1]

    def test_invalid_drop_prob(self):
        with pytest.raises(ValueError):
            SeededLayerDrop(4, 1.0)
        with pytest.raises(ValueError):
            BroadcastLayerDrop(None, 4, -0.1)


class TestAdaptivePrecision:
    def test_level_depends_on_gradient_scale(self):
        hook = comm_hooks.AdaptivePrecisionHook(tolerance=1e-4)
        big = np.full(4, 100.0)
        small = np.full(4, 1e-3)
        assert hook._desired_level(big) < hook._desired_level(small)

    def test_zero_gradient_narrowest(self):
        hook = comm_hooks.AdaptivePrecisionHook()
        assert hook._desired_level(np.zeros(3)) == len(hook.LEVELS) - 1

    def test_training_with_adaptive_hook_converges(self):
        def body(rank):
            model = small_classifier()
            hook = comm_hooks.AdaptivePrecisionHook(tolerance=1e-5)
            ddp = DistributedDataParallel(model, comm_hook=hook)
            opt = SGD(ddp.parameters(), lr=0.2, momentum=0.9)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            losses = []
            for _ in range(60):
                opt.zero_grad()
                loss = loss_fn(ddp(Tensor(X[shard])), Y[shard])
                loss.backward()
                opt.step()
                losses.append(loss.item())
            return losses[0], losses[-1], set(hook.chosen_levels.values())

        for first, last, levels in run_world(2, body, backend="gloo", timeout=30):
            assert last < first * 0.5
            assert levels  # some level was chosen collectively

    def test_ranks_agree_on_chosen_level(self):
        def body(rank):
            model = small_classifier()
            hook = comm_hooks.AdaptivePrecisionHook(tolerance=1e-6)
            ddp = DistributedDataParallel(model, comm_hook=hook)
            loss_fn = nn.CrossEntropyLoss()
            # different data -> potentially different desired levels
            loss_fn(ddp(Tensor(X[:4] * (rank + 1) * 100)), Y[:4]).backward()
            return sorted(hook.chosen_levels.values())

        levels = run_world(2, body, backend="gloo")
        assert levels[0] == levels[1]


class TestCheckpointing:
    def test_roundtrip(self):
        model = small_classifier()
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ckpt.npz")
            save_checkpoint(path, model, extra={"epoch": 3, "lr": 0.1})
            other = small_classifier()
            for p in other.parameters():
                p.data[...] = 0.0
            extra = load_checkpoint(path, other)
            assert extra["epoch"] == 3
            assert float(extra["lr"]) == 0.1
            for (na, a), (nb, b) in zip(
                model.named_parameters(), other.named_parameters()
            ):
                assert np.array_equal(a.data, b.data)

    def test_rank0_save_then_broadcast_on_load(self):
        """The DDP checkpointing pattern: load on rank 0 only, let the
        constructor broadcast align every replica."""
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "model.npz")
            source = small_classifier()
            for p in source.parameters():
                p.data += 5.0
            save_checkpoint(path, source)
            expected = source.state_dict()

            def body(rank):
                manual_seed(100 + rank)
                model = small_classifier()
                if rank == 0:
                    load_checkpoint(path, model)
                ddp = DistributedDataParallel(model)
                return ddp.state_dict()

            states = run_world(2, body, backend="gloo")
            for name in expected:
                assert np.allclose(states[0][name], expected[name])
                assert np.allclose(states[1][name], expected[name])
