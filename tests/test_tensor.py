"""Tensor type behavior."""

import numpy as np
import pytest

from repro.autograd import Tensor, arange, full, ones, randn, tensor, zeros
from repro.utils import manual_seed


class TestConstruction:
    def test_from_list(self):
        t = tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_from_tensor_copies_device(self):
        src = Tensor(np.zeros(3), device="gpu:1")
        dup = Tensor(src)
        assert dup.device == "gpu:1"

    def test_integer_requires_grad_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_factories(self):
        assert zeros(2, 3).data.sum() == 0
        assert ones(4).data.sum() == 4
        assert full((2, 2), 7.0).data[0, 0] == 7.0
        assert arange(5).shape == (5,)
        assert zeros((2, 3)).shape == (2, 3)  # tuple form

    def test_randn_is_seeded(self):
        manual_seed(123)
        a = randn(5)
        manual_seed(123)
        b = randn(5)
        assert np.array_equal(a.data, b.data)


class TestProperties:
    def test_shape_ndim_size(self):
        t = zeros(2, 3, 4)
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24
        assert t.numel() == 24
        assert len(t) == 2

    def test_element_size_and_nbytes(self):
        t = zeros(3)
        assert t.element_size() == 8
        assert t.nbytes() == 24

    def test_is_leaf(self):
        a = randn(3, requires_grad=True)
        assert a.is_leaf
        b = a * 2.0
        assert not b.is_leaf

    def test_device_default_and_to(self):
        t = zeros(2)
        assert t.device == "cpu"
        assert t.to("gpu:0") is t
        assert t.device == "gpu:0"

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(zeros(1, requires_grad=True))
        assert "requires_grad" not in repr(zeros(1))


class TestMutation:
    def test_copy_preserves_identity(self):
        t = zeros(4)
        storage = t.data
        t.copy_(np.arange(4.0))
        assert t.data is storage
        assert t.data[3] == 3.0

    def test_copy_reshapes_source(self):
        t = zeros(2, 2)
        t.copy_(np.arange(4.0))
        assert t.data[1, 1] == 3.0

    def test_item(self):
        assert tensor([3.5]).item() == 3.5

    def test_detach_shares_storage_but_drops_grad(self):
        a = randn(3, requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data

    def test_clone_independent_storage(self):
        a = tensor([1.0, 2.0])
        c = a.clone()
        c.data[0] = 9.0
        assert a.data[0] == 1.0

    def test_clone_tracks_grad(self):
        a = randn(3, requires_grad=True)
        c = a.clone()
        c.sum().backward()
        assert np.allclose(a.grad.data, np.ones(3))

    def test_zero_grad(self):
        a = randn(3, requires_grad=True)
        (a * a).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_astype(self):
        t = tensor([1.0, 2.0]).astype(np.float32)
        assert t.dtype == np.float32


class TestBackwardEntry:
    def test_backward_on_nonscalar_requires_grad_arg(self):
        a = randn(3, requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        a = randn(3, requires_grad=True)
        (a * 2.0).backward(Tensor(np.ones(3)))
        assert np.allclose(a.grad.data, 2.0)

    def test_backward_on_leaf(self):
        a = randn(3, requires_grad=True)
        a.backward(Tensor(np.full(3, 5.0)))
        assert np.allclose(a.grad.data, 5.0)

    def test_backward_without_grad_errors(self):
        a = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_accumulator_only_for_leaves(self):
        a = randn(3, requires_grad=True)
        b = a * 2.0
        with pytest.raises(RuntimeError):
            b.accumulator()
