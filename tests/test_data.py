"""Datasets, samplers, and the data loader."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.data import (
    DataLoader,
    DistributedSampler,
    RandomSampler,
    SequentialSampler,
    TensorDataset,
    make_classification,
    make_regression,
    synthetic_mnist,
)


class TestTensorDataset:
    def test_pairs(self):
        ds = TensorDataset(np.arange(10).reshape(5, 2), np.arange(5))
        assert len(ds) == 5
        x, y = ds[2]
        assert np.array_equal(x, [4, 5]) and y == 2

    def test_single_array(self):
        ds = TensorDataset(np.arange(4))
        assert ds[1] == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TensorDataset(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TensorDataset()


class TestSamplers:
    def test_sequential(self):
        ds = TensorDataset(np.arange(5))
        assert list(SequentialSampler(ds)) == [0, 1, 2, 3, 4]

    def test_random_is_permutation(self):
        ds = TensorDataset(np.arange(10))
        sampler = RandomSampler(ds, seed=1)
        indices = list(sampler)
        assert sorted(indices) == list(range(10))

    def test_random_epoch_changes_order(self):
        ds = TensorDataset(np.arange(20))
        sampler = RandomSampler(ds, seed=1)
        first = list(sampler)
        sampler.set_epoch(1)
        second = list(sampler)
        assert first != second

    def test_distributed_shards_are_disjoint_and_cover(self):
        ds = TensorDataset(np.arange(16))
        shards = [list(DistributedSampler(ds, 4, r, shuffle=False)) for r in range(4)]
        combined = sorted(i for shard in shards for i in shard)
        assert combined == list(range(16))
        assert all(len(s) == 4 for s in shards)

    def test_distributed_pads_uneven(self):
        ds = TensorDataset(np.arange(10))
        shards = [list(DistributedSampler(ds, 4, r, shuffle=False)) for r in range(4)]
        assert all(len(s) == 3 for s in shards)  # ceil(10/4)
        flat = [i for s in shards for i in s]
        assert set(flat) == set(range(10))  # wrap-around reuses indices

    def test_distributed_shuffle_same_permutation_across_ranks(self):
        ds = TensorDataset(np.arange(12))
        a = DistributedSampler(ds, 2, 0, shuffle=True, seed=3)
        b = DistributedSampler(ds, 2, 1, shuffle=True, seed=3)
        combined = sorted(list(a) + list(b))
        assert combined == list(range(12))

    def test_distributed_set_epoch_reshuffles(self):
        ds = TensorDataset(np.arange(32))
        sampler = DistributedSampler(ds, 2, 0, shuffle=True, seed=0)
        first = list(sampler)
        sampler.set_epoch(1)
        assert list(sampler) != first

    def test_rank_validation(self):
        ds = TensorDataset(np.arange(4))
        with pytest.raises(ValueError):
            DistributedSampler(ds, 2, 2)


class TestDataLoader:
    def test_batching(self):
        ds = TensorDataset(np.arange(20).reshape(10, 2).astype(float), np.arange(10))
        loader = DataLoader(ds, batch_size=4)
        batches = list(loader)
        assert len(batches) == 3
        x, y = batches[0]
        assert isinstance(x, Tensor) and x.shape == (4, 2)
        assert isinstance(y, np.ndarray)  # integer labels stay numpy
        assert len(batches[-1][1]) == 2  # remainder kept

    def test_drop_last(self):
        ds = TensorDataset(np.arange(10).astype(float))
        loader = DataLoader(ds, batch_size=4, drop_last=True)
        assert len(list(loader)) == 2
        assert len(loader) == 2

    def test_len_without_drop(self):
        ds = TensorDataset(np.arange(10).astype(float))
        assert len(DataLoader(ds, batch_size=4)) == 3

    def test_with_distributed_sampler(self):
        ds = TensorDataset(np.arange(16).astype(float), np.arange(16))
        loader = DataLoader(
            ds, batch_size=2, sampler=DistributedSampler(ds, 2, 0, shuffle=False)
        )
        seen = [int(v) for x, y in loader for v in y]
        assert len(seen) == 8

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(TensorDataset(np.arange(2)), batch_size=0)


class TestSyntheticData:
    def test_regression_shapes(self):
        ds = make_regression(50, 8, num_outputs=2, seed=0)
        x, y = ds[0]
        assert x.shape == (8,) and y.shape == (2,)
        assert len(ds) == 50

    def test_regression_learnable(self):
        """Low noise regression is nearly linear: check correlation."""
        ds = make_regression(200, 4, noise=0.01, seed=1)
        xs = np.stack([ds[i][0] for i in range(200)])
        ys = np.stack([ds[i][1] for i in range(200)]).reshape(-1)
        w, *_ = np.linalg.lstsq(xs, ys, rcond=None)
        residual = ys - xs @ w
        assert np.abs(residual).std() < 0.05

    def test_classification_separable(self):
        ds = make_classification(100, 5, 3, separation=5.0, seed=2)
        xs = np.stack([ds[i][0] for i in range(100)])
        ys = np.array([ds[i][1] for i in range(100)])
        centroids = np.stack([xs[ys == c].mean(axis=0) for c in range(3)])
        predictions = np.argmin(
            ((xs[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1
        )
        assert (predictions == ys).mean() > 0.9

    def test_mnist_shapes_and_normalization(self):
        ds = synthetic_mnist(64, seed=0)
        x, y = ds[0]
        assert x.shape == (1, 28, 28)
        assert 0 <= y < 10
        all_x = np.stack([ds[i][0] for i in range(64)])
        assert abs(all_x.mean()) < 1e-6
        assert abs(all_x.std() - 1.0) < 1e-3

    def test_mnist_classes_distinguishable(self):
        """Nearest-prototype classification beats chance by a lot."""
        ds = synthetic_mnist(200, noise=0.1, seed=3)
        xs = np.stack([ds[i][0].reshape(-1) for i in range(200)])
        ys = np.array([ds[i][1] for i in range(200)])
        accuracy_numerator = 0
        centroids = {}
        for c in np.unique(ys):
            centroids[c] = xs[ys == c].mean(axis=0)
        for x, y in zip(xs, ys):
            best = min(centroids, key=lambda c: np.sum((x - centroids[c]) ** 2))
            accuracy_numerator += best == y
        assert accuracy_numerator / len(ys) > 0.6

    def test_mnist_deterministic(self):
        a = synthetic_mnist(16, seed=5)
        b = synthetic_mnist(16, seed=5)
        assert np.array_equal(a[0][0], b[0][0])
