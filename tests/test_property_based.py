"""Property-based tests of the core invariants (hypothesis)."""

import threading

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd.function import unbroadcast
from repro.comm import algorithms as alg
from repro.comm.transport import TransportHub
from repro.core.bucket import compute_bucket_assignment, validate_assignment
from repro.data import DistributedSampler, TensorDataset
from repro.nn.module import Parameter

# ---------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------

world_sizes = st.integers(min_value=1, max_value=6)
payload_sizes = st.integers(min_value=1, max_value=40)
param_size_lists = st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=24)


def _run_ranks(world, fn):
    hub = TransportHub(world, default_timeout=10)
    results = [None] * world
    errors = []

    def worker(rank):
        try:
            results[rank] = fn(hub, rank)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(world)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(20)
    assert not errors, errors
    return results


# ---------------------------------------------------------------------
# collective algorithms
# ---------------------------------------------------------------------


class TestAllReduceProperties:
    @settings(max_examples=25, deadline=None)
    @given(world=world_sizes, size=payload_sizes, seed=st.integers(0, 2**16),
           algorithm=st.sampled_from(sorted(alg.ALLREDUCE_ALGORITHMS)))
    def test_allreduce_equals_sum(self, world, size, seed, algorithm):
        rng = np.random.default_rng(seed)
        inputs = [rng.standard_normal(size) for _ in range(world)]
        expected = np.sum(inputs, axis=0)
        fn = alg.ALLREDUCE_ALGORITHMS[algorithm]

        def body(hub, rank):
            buf = inputs[rank].copy()
            fn(hub, list(range(world)), rank, buf, "sum", tag="p")
            return buf

        for out in _run_ranks(world, body):
            assert np.allclose(out, expected, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(world=st.integers(2, 5), size=payload_sizes, seed=st.integers(0, 2**16))
    def test_allreduce_idempotent_shape_and_dtype(self, world, size, seed):
        rng = np.random.default_rng(seed)
        inputs = [rng.integers(0, 100, size).astype(np.int64) for _ in range(world)]
        expected = np.sum(inputs, axis=0)

        def body(hub, rank):
            buf = inputs[rank].copy()
            alg.allreduce_ring(hub, list(range(world)), rank, buf, "sum", tag="p")
            return buf

        for out in _run_ranks(world, body):
            assert out.dtype == np.int64
            assert np.array_equal(out, expected)

    @settings(max_examples=15, deadline=None)
    @given(world=world_sizes, size=payload_sizes, seed=st.integers(0, 2**16),
           root=st.integers(0, 5))
    def test_broadcast_copies_root(self, world, size, seed, root):
        root = root % world
        rng = np.random.default_rng(seed)
        payload = rng.standard_normal(size)

        def body(hub, rank):
            buf = payload.copy() if rank == root else np.zeros(size)
            alg.broadcast(hub, list(range(world)), rank, buf, root=root, tag="p")
            return buf

        for out in _run_ranks(world, body):
            assert np.array_equal(out, payload)


# ---------------------------------------------------------------------
# bucket assignment
# ---------------------------------------------------------------------


class TestBucketProperties:
    @settings(max_examples=50, deadline=None)
    @given(sizes=param_size_lists, cap=st.integers(0, 2048))
    def test_assignment_is_partition(self, sizes, cap):
        params = [Parameter(np.zeros(s)) for s in sizes]
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=cap)
        validate_assignment(buckets, len(params))

    @settings(max_examples=50, deadline=None)
    @given(sizes=param_size_lists, cap=st.integers(1, 2048))
    def test_concatenated_indices_are_reverse_order(self, sizes, cap):
        params = [Parameter(np.zeros(s)) for s in sizes]
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=cap)
        flattened = [i for b in buckets for i in b.param_indices]
        assert flattened == list(reversed(range(len(params))))

    @settings(max_examples=50, deadline=None)
    @given(sizes=param_size_lists, cap=st.integers(1, 2048))
    def test_multi_param_buckets_respect_cap(self, sizes, cap):
        params = [Parameter(np.zeros(s)) for s in sizes]
        for bucket in compute_bucket_assignment(params, bucket_cap_bytes=cap):
            if len(bucket.param_indices) > 1:
                assert bucket.total_elements * 8 <= cap

    @settings(max_examples=30, deadline=None)
    @given(sizes=param_size_lists, cap=st.integers(1, 2048))
    def test_offsets_tile_buffer_exactly(self, sizes, cap):
        params = [Parameter(np.zeros(s)) for s in sizes]
        for bucket in compute_bucket_assignment(params, bucket_cap_bytes=cap):
            position = 0
            for offset, size in zip(bucket.offsets, bucket.sizes):
                assert offset == position
                position += size
            assert position == bucket.total_elements


# ---------------------------------------------------------------------
# unbroadcast / sampler
# ---------------------------------------------------------------------


class TestUnbroadcastProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 4), min_size=0, max_size=3),
        extra=st.lists(st.integers(1, 3), min_size=0, max_size=2),
        mask=st.data(),
    )
    def test_inverts_broadcasting(self, shape, extra, mask):
        shape = tuple(shape)
        # randomly set some dims to 1 so broadcasting happens
        reduced = tuple(
            1 if mask.draw(st.booleans()) else dim for dim in shape
        )
        source = np.ones(reduced)
        broadcast_shape = tuple(extra) + shape
        grad = np.ones(broadcast_shape) if np.prod(broadcast_shape, initial=1) else np.ones(shape)
        try:
            broadcasted = np.broadcast_to(source, broadcast_shape)
        except ValueError:
            return  # incompatible draw; skip
        out = unbroadcast(np.ones(broadcasted.shape), reduced)
        assert out.shape == reduced
        # gradient mass is conserved
        assert np.isclose(out.sum(), np.prod(broadcast_shape, initial=1.0))


class TestSamplerProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 64),
        replicas=st.integers(1, 8),
        epoch=st.integers(0, 3),
        shuffle=st.booleans(),
    )
    def test_shards_cover_dataset(self, n, replicas, epoch, shuffle):
        ds = TensorDataset(np.arange(n))
        shards = []
        for rank in range(replicas):
            sampler = DistributedSampler(ds, replicas, rank, shuffle=shuffle)
            sampler.set_epoch(epoch)
            shards.append(list(sampler))
        lengths = {len(s) for s in shards}
        assert len(lengths) == 1  # identical shard sizes (DDP requirement)
        combined = set(i for shard in shards for i in shard)
        assert combined == set(range(n))
