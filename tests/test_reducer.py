"""Reducer internals: pending counts, launch order, error paths."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import get_context
from repro.core import DistributedDataParallel
from repro.core.bucket import compute_bucket_assignment
from repro.core.reducer import Reducer, ReducerError
from repro.nn.module import Parameter
from repro.utils import manual_seed

from conftest import run_world, small_classifier


class RecordingGroup:
    """A fake process group that records collective launches."""

    def __init__(self, size=2):
        self.size = size
        self.calls = []
        self.supports_cpu_tensors = True

    def allreduce(self, tensor, op="sum", async_op=False):
        data = tensor.data if hasattr(tensor, "data") else tensor
        self.calls.append(("allreduce", data, op))
        # emulate a world where the peer contributes the same values
        data *= self.size

        class _W:
            def wait(self, timeout=None):
                pass

        return _W() if async_op else None


def make_reducer(sizes=(4, 4, 4), cap_bytes=10**9, **kwargs):
    params = [Parameter(np.zeros(s)) for s in sizes]
    specs = compute_bucket_assignment(params, bucket_cap_bytes=cap_bytes)
    group = RecordingGroup()
    reducer = Reducer(params, specs, group, **kwargs)
    return params, reducer, group


class TestLifecycle:
    def test_hooks_drive_reduction(self):
        params, reducer, group = make_reducer()
        reducer.prepare_for_backward([])
        loss = sum(((p * 1.0) ** 2).sum() for p in params) + (params[0] * 1.0).sum()
        loss.backward()
        assert reducer.finalized
        assert len([c for c in group.calls if c[0] == "allreduce"]) == 1

    def test_gradients_averaged(self):
        params, reducer, group = make_reducer()
        reducer.prepare_for_backward([])
        (sum((p * 2.0).sum() for p in params)).backward()
        # local grad = 2; fake group doubles (sum over 2 ranks) then /2
        for p in params:
            assert np.allclose(p.grad.data, 2.0)

    def test_double_prepare_without_finish_raises(self):
        params, reducer, group = make_reducer()
        reducer.prepare_for_backward([])
        with pytest.raises(ReducerError, match="finished gradient reduction"):
            reducer.prepare_for_backward([])

    def test_iterations_counted(self):
        params, reducer, group = make_reducer()
        for _ in range(3):
            reducer.prepare_for_backward([])
            sum((p * 1.0).sum() for p in params).backward()
        assert reducer.iterations_synced == 3

    def test_hooks_idle_when_not_prepared(self):
        params, reducer, group = make_reducer()
        sum((p * 1.0).sum() for p in params).backward()
        assert group.calls == []  # no communication outside an iteration

    def test_detach_hooks(self):
        params, reducer, group = make_reducer()
        reducer.detach_hooks()
        reducer.prepare_for_backward([])
        sum((p * 1.0).sum() for p in params).backward()
        assert group.calls == []


class TestLaunchOrder:
    def test_buckets_launch_in_index_order(self):
        """Even though bucket 1 (early layers) could be ready late,
        launches always follow bucket index order (Fig. 3(a))."""

        def body(rank):
            manual_seed(0)
            model = small_classifier()
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.0001)
            pg = ddp.process_group
            x = Tensor(np.random.default_rng(rank).standard_normal((4, 6)))
            nn.CrossEntropyLoss()(ddp(x), np.zeros(4, dtype=np.int64)).backward()
            launched = [b.launched for b in ddp.reducer.buckets]
            return launched

        results = run_world(2, body, backend="gloo")
        assert all(all(flags) for flags in results)

    def test_out_of_order_readiness_is_held_back(self):
        """Mark a later bucket ready first; it must not launch before
        earlier buckets."""
        params, reducer, group = make_reducer(sizes=(4, 4), cap_bytes=4 * 8)
        reducer.prepare_for_backward([])
        # bucket 0 holds param 1 (reverse order); bucket 1 holds param 0.
        # Fire param 0 (bucket 1) first:
        (params[0] * 1.0).sum().backward()
        assert len(group.calls) == 0  # held back
        (params[1] * 1.0).sum().backward()
        assert len(group.calls) == 2  # both launched, in order


class TestUnusedHandling:
    def test_unused_params_contribute_zeros(self):
        params, reducer, group = make_reducer(find_unused_parameters=True)
        # only param 0 participates
        out = (params[0] * 3.0).sum()
        reducer.prepare_for_backward([out])
        out.backward()
        assert reducer.finalized
        # grads of unused params stay None (globally unused with fake pg
        # summing the local bitmap only)
        assert params[1].grad is None
        assert params[2].grad is None
        assert params[0].grad is not None

    def test_bitmap_reset_after_sync(self):
        params, reducer, group = make_reducer(find_unused_parameters=True)
        out = (params[0] * 3.0).sum()
        reducer.prepare_for_backward([out])
        out.backward()
        assert np.all(reducer._local_used == 0)

    def test_over_ready_detected(self):
        params, reducer, group = make_reducer(find_unused_parameters=True)
        out = (params[0] * 3.0).sum()
        reducer.prepare_for_backward([out])
        out.backward()
        # firing again in the same "iteration" is an over-count
        reducer.prepare_for_backward([out])
        reducer._mark_ready(0, unused=False)
        with pytest.raises(ReducerError, match="over-counted|marked ready twice"):
            reducer._mark_ready(0, unused=False)


class TestRebuild:
    def test_rebuild_buckets_swaps_layout(self):
        params, reducer, group = make_reducer(cap_bytes=4 * 8)
        assert len(reducer.buckets) == 3
        new_specs = compute_bucket_assignment(params, bucket_cap_bytes=10**9)
        reducer.rebuild_buckets(new_specs)
        assert len(reducer.buckets) == 1
        assert reducer.rebuilt_bucket_count == 1
        # still functions
        reducer.prepare_for_backward([])
        sum((p * 1.0).sum() for p in params).backward()
        assert reducer.finalized

    def test_rebuild_mid_iteration_rejected(self):
        params, reducer, group = make_reducer()
        reducer.prepare_for_backward([])
        with pytest.raises(ReducerError, match="mid-iteration"):
            reducer.rebuild_buckets(
                compute_bucket_assignment(params, bucket_cap_bytes=10**9)
            )

    def test_invalid_assignment_rejected(self):
        params, reducer, group = make_reducer()
        with pytest.raises(ValueError):
            Reducer(params, [], RecordingGroup())


class TestNoOverlapMode:
    def test_no_overlap_defers_launches(self):
        params, reducer, group = make_reducer(cap_bytes=4 * 8, overlap=False)
        reducer.prepare_for_backward([])
        (params[2] * 1.0).sum().backward()
        assert group.calls == []  # bucket 0 ready but deferred
        (params[1] * 1.0).sum().backward()
        (params[0] * 1.0).sum().backward()
        assert len(group.calls) == 3  # all launched at the end, then waited
        assert reducer.finalized
