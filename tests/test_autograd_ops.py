"""Numeric gradient checks for every primitive operation."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.autograd.function import unbroadcast

from conftest import numeric_gradient

TOL = 5e-6


def check_op_gradient(build_loss, *arrays, tol=TOL):
    """``build_loss(*tensors)`` must return a scalar Tensor; compares
    autograd gradients against central differences for every input."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor_in, array in zip(tensors, arrays):
        numeric = numeric_gradient(
            lambda: build_loss(*[Tensor(a) for a in arrays]).item(), array
        )
        assert tensor_in.grad is not None
        err = np.abs(tensor_in.grad.data - numeric).max()
        assert err < tol, f"gradient mismatch {err}"


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestElementwise:
    def test_add(self, rng):
        check_op_gradient(lambda a, b: (a + b).sum(), rng.standard_normal((3, 4)), rng.standard_normal((3, 4)))

    def test_add_broadcast(self, rng):
        check_op_gradient(lambda a, b: (a + b).sum(), rng.standard_normal((3, 4)), rng.standard_normal(4))

    def test_sub(self, rng):
        check_op_gradient(lambda a, b: ((a - b) ** 2).sum(), rng.standard_normal(5), rng.standard_normal(5))

    def test_mul(self, rng):
        check_op_gradient(lambda a, b: (a * b).sum(), rng.standard_normal((2, 3)), rng.standard_normal((2, 3)))

    def test_mul_broadcast_scalar_shape(self, rng):
        check_op_gradient(lambda a, b: (a * b).sum(), rng.standard_normal((2, 3)), rng.standard_normal((1, 3)))

    def test_div(self, rng):
        b = rng.standard_normal((3,)) + 3.0
        check_op_gradient(lambda x, y: (x / y).sum(), rng.standard_normal(3), b)

    def test_neg(self, rng):
        check_op_gradient(lambda a: (-a * a).sum(), rng.standard_normal(4))

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal(5)) + 0.5
        check_op_gradient(lambda x: (x ** 3).sum(), a)

    def test_pow_negative_exponent(self, rng):
        a = np.abs(rng.standard_normal(5)) + 1.0
        check_op_gradient(lambda x: (x ** -0.5).sum(), a)

    def test_rsub_rdiv_radd_rmul(self, rng):
        a = np.abs(rng.standard_normal(4)) + 1.0
        check_op_gradient(lambda x: (2.0 - x).sum() + (2.0 / x).sum() + (1.0 + x).sum() + (3.0 * x).sum(), a)


class TestTranscendental:
    def test_exp(self, rng):
        check_op_gradient(lambda a: a.exp().sum(), rng.standard_normal(4))

    def test_log(self, rng):
        a = np.abs(rng.standard_normal(4)) + 0.5
        check_op_gradient(lambda x: x.log().sum(), a)

    def test_tanh(self, rng):
        check_op_gradient(lambda a: (a.tanh() ** 2).sum(), rng.standard_normal(4))

    def test_sigmoid(self, rng):
        check_op_gradient(lambda a: (a.sigmoid() * 3.0).sum(), rng.standard_normal(4))

    def test_relu(self, rng):
        a = rng.standard_normal(20) + 0.05  # avoid kink at exactly 0
        check_op_gradient(lambda x: (x.relu() * x).sum(), a)

    def test_gelu(self, rng):
        check_op_gradient(lambda a: ops.gelu(a).sum(), rng.standard_normal(6))


class TestLinearAlgebra:
    def test_matmul_2d(self, rng):
        check_op_gradient(
            lambda a, b: (a @ b).sum(), rng.standard_normal((3, 4)), rng.standard_normal((4, 2))
        )

    def test_matmul_batched(self, rng):
        check_op_gradient(
            lambda a, b: ((a @ b) ** 2).sum(),
            rng.standard_normal((2, 3, 4)),
            rng.standard_normal((2, 4, 5)),
        )

    def test_matmul_broadcast_batch(self, rng):
        check_op_gradient(
            lambda a, b: (a @ b).sum(),
            rng.standard_normal((2, 3, 4)),
            rng.standard_normal((4, 5)),
        )

    def test_transpose(self, rng):
        check_op_gradient(lambda a: (a.T @ a).sum(), rng.standard_normal((3, 4)))

    def test_reshape(self, rng):
        check_op_gradient(lambda a: (a.reshape(6) ** 2).sum(), rng.standard_normal((2, 3)))

    def test_getitem_slice(self, rng):
        check_op_gradient(lambda a: (a[1:] ** 2).sum(), rng.standard_normal((4, 3)))

    def test_getitem_fancy_repeated(self, rng):
        idx = np.array([0, 0, 2])
        check_op_gradient(lambda a: (a[idx] ** 2).sum(), rng.standard_normal((4, 3)))

    def test_cat(self, rng):
        check_op_gradient(
            lambda a, b: (ops.cat([a, b], axis=0) ** 2).sum(),
            rng.standard_normal((2, 3)),
            rng.standard_normal((4, 3)),
        )


class TestReductions:
    def test_sum_all(self, rng):
        check_op_gradient(lambda a: (a.sum() ** 2), rng.standard_normal((3, 3)))

    def test_sum_axis(self, rng):
        check_op_gradient(lambda a: (a.sum(axis=0) ** 2).sum(), rng.standard_normal((3, 4)))

    def test_sum_keepdims(self, rng):
        check_op_gradient(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), rng.standard_normal((3, 4)))

    def test_mean_all(self, rng):
        check_op_gradient(lambda a: a.mean() * 6.0, rng.standard_normal((2, 3)))

    def test_mean_axis_tuple(self, rng):
        check_op_gradient(lambda a: (a.mean(axis=(0, 2)) ** 2).sum(), rng.standard_normal((2, 3, 4)))

    def test_max_all(self, rng):
        a = rng.standard_normal(10)
        check_op_gradient(lambda x: x.max() * 2.0, a)

    def test_max_axis(self, rng):
        a = rng.standard_normal((4, 5))
        check_op_gradient(lambda x: (x.max(axis=1) ** 2).sum(), a)

    def test_softmax_rows_sum_to_one(self, rng):
        out = ops.softmax(Tensor(rng.standard_normal((5, 7))))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_gradient(self, rng):
        check_op_gradient(lambda a: (ops.softmax(a, axis=-1) ** 2).sum(), rng.standard_normal((3, 4)))

    def test_log_softmax_gradient(self, rng):
        check_op_gradient(lambda a: (ops.log_softmax(a, axis=-1) * a).sum(), rng.standard_normal((3, 4)))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((4, 6)))
        assert np.allclose(ops.log_softmax(x).data, np.log(ops.softmax(x).data))


class TestConvPool:
    def test_conv2d_gradient(self, rng):
        check_op_gradient(
            lambda x, w: (ops.conv2d(x, w, stride=1, padding=1) ** 2).sum(),
            rng.standard_normal((2, 2, 5, 5)),
            rng.standard_normal((3, 2, 3, 3)),
            tol=1e-5,
        )

    def test_conv2d_stride2(self, rng):
        check_op_gradient(
            lambda x, w: ops.conv2d(x, w, stride=2, padding=0).sum(),
            rng.standard_normal((1, 1, 6, 6)),
            rng.standard_normal((2, 1, 2, 2)),
        )

    def test_conv2d_shape(self, rng):
        out = ops.conv2d(
            Tensor(rng.standard_normal((2, 3, 8, 8))),
            Tensor(rng.standard_normal((5, 3, 3, 3))),
            stride=2,
            padding=1,
        )
        assert out.shape == (2, 5, 4, 4)

    def test_conv2d_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            ops.conv2d(
                Tensor(rng.standard_normal((1, 3, 4, 4))),
                Tensor(rng.standard_normal((2, 4, 3, 3))),
            )

    def test_conv2d_matches_direct_computation(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        w = rng.standard_normal((1, 1, 2, 2))
        out = ops.conv2d(Tensor(x), Tensor(w)).data
        expected = np.zeros((1, 1, 3, 3))
        for i in range(3):
            for j in range(3):
                expected[0, 0, i, j] = (x[0, 0, i : i + 2, j : j + 2] * w[0, 0]).sum()
        assert np.allclose(out, expected)

    def test_maxpool_gradient(self, rng):
        a = rng.standard_normal((2, 2, 4, 4))
        check_op_gradient(lambda x: (ops.max_pool2d(x, 2) ** 2).sum(), a)

    def test_maxpool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = ops.max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_gradient(self, rng):
        check_op_gradient(
            lambda x: (ops.avg_pool2d(x, 2) ** 2).sum(), rng.standard_normal((1, 2, 4, 4))
        )

    def test_avgpool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = ops.avg_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_leading_dims(self):
        assert unbroadcast(np.ones((2, 3, 4)), (3, 4)).shape == (3, 4)

    def test_kept_one_dims(self):
        out = unbroadcast(np.ones((3, 4)), (1, 4))
        assert out.shape == (1, 4)
        assert np.all(out == 3)

    def test_scalar_target(self):
        out = unbroadcast(np.ones((2, 3)), ())
        assert out.shape == ()
        assert out == 6
