"""The parameter-server baseline (paper §2.3 contrast)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.baselines import run_parameter_server_training
from repro.optim import SGD
from repro.utils import manual_seed

from conftest import small_classifier

RNG = np.random.default_rng(41)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


def local_reference(iters, lr=0.05):
    model = small_classifier()
    opt = SGD(model.parameters(), lr=lr)
    loss_fn = nn.CrossEntropyLoss()
    for _ in range(iters):
        opt.zero_grad()
        loss_fn(model(Tensor(X)), Y).backward()
        opt.step()
    return model.state_dict()


def worker_fn(worker_index, iteration, model):
    loss_fn = nn.CrossEntropyLoss()
    shard = slice(worker_index * 4, (worker_index + 1) * 4)
    loss_fn(model(Tensor(X[shard])), Y[shard]).backward()


class TestSyncParameterServer:
    def test_equivalent_to_local_full_batch(self):
        """Sync PS with plain SGD == local full-batch training: the
        server averages worker gradients exactly like AllReduce."""
        iters = 5
        reference = local_reference(iters)
        server_state, worker_states = run_parameter_server_training(
            world_size=3,  # server + 2 workers
            make_model=small_classifier,
            make_optimizer=lambda m: SGD(m.parameters(), lr=0.05),
            worker_fn=worker_fn,
            iterations=iters,
            mode="sync",
        )
        for name in reference:
            assert np.allclose(server_state["state"][name], reference[name], atol=1e-9)

    def test_workers_end_with_server_params(self):
        server_state, worker_states = run_parameter_server_training(
            world_size=3,
            make_model=small_classifier,
            make_optimizer=lambda m: SGD(m.parameters(), lr=0.05),
            worker_fn=worker_fn,
            iterations=3,
            mode="sync",
        )
        for state in worker_states:
            for name in server_state["state"]:
                assert np.allclose(state[name], server_state["state"][name])

    def test_one_update_per_round(self):
        server_state, _ = run_parameter_server_training(
            world_size=3,
            make_model=small_classifier,
            make_optimizer=lambda m: SGD(m.parameters(), lr=0.05),
            worker_fn=worker_fn,
            iterations=4,
            mode="sync",
        )
        assert server_state["updates"] == 4


class TestAsyncParameterServer:
    def test_applies_every_push(self):
        """Async mode applies one update per worker push (2 workers × n)."""
        server_state, _ = run_parameter_server_training(
            world_size=3,
            make_model=small_classifier,
            make_optimizer=lambda m: SGD(m.parameters(), lr=0.02),
            worker_fn=worker_fn,
            iterations=4,
            mode="async",
        )
        assert server_state["updates"] == 8

    def test_async_converges_roughly(self):
        """Stale gradients still make progress on an easy problem."""
        def loss_of(state):
            model = small_classifier()
            model.load_state_dict(state)
            return nn.CrossEntropyLoss()(model(Tensor(X)), Y).item()

        manual_seed(7)
        initial_loss = loss_of(small_classifier().state_dict())
        server_state, _ = run_parameter_server_training(
            world_size=3,
            make_model=small_classifier,
            make_optimizer=lambda m: SGD(m.parameters(), lr=0.02),
            worker_fn=worker_fn,
            iterations=25,
            mode="async",
        )
        assert loss_of(server_state["state"]) < initial_loss * 0.9

    def test_async_not_equivalent_to_local(self):
        """The §2.3 point: async P2P training loses equivalence."""
        iters = 6
        reference = local_reference(iters, lr=0.05)
        server_state, _ = run_parameter_server_training(
            world_size=3,
            make_model=small_classifier,
            make_optimizer=lambda m: SGD(m.parameters(), lr=0.05),
            worker_fn=worker_fn,
            iterations=iters,
            mode="async",
        )
        drift = max(
            np.abs(server_state["state"][n] - reference[n]).max() for n in reference
        )
        assert drift > 1e-6


class TestValidation:
    def test_needs_two_ranks(self):
        with pytest.raises(ValueError):
            run_parameter_server_training(
                1, small_classifier, lambda m: SGD(m.parameters(), lr=0.1),
                worker_fn, 1,
            )

    def test_invalid_mode(self):
        from repro.baselines import ParameterServer

        with pytest.raises(ValueError):
            ParameterServer(None, None, None, 0, [1], mode="bogus")
