"""Docstring-coverage gate for the public ``repro.comm`` API.

Wraps ``tools/check_docstrings.py`` (the same script CI runs as a
standalone step) so the requirement is enforced by the tier-1 suite
too: every public module, class, and function in the communication
layer must carry a docstring.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docstrings import DEFAULT_TARGETS, check_file  # noqa: E402


def test_public_comm_api_has_docstrings():
    problems = []
    for target in DEFAULT_TARGETS:
        problems.extend(
            f"{target.relative_to(REPO_ROOT)}:{line}: {msg}"
            for line, msg in check_file(target)
        )
    assert not problems, "missing docstrings:\n" + "\n".join(problems)
