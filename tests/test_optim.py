"""Optimizer update rules and schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, CosineAnnealingLR, LambdaLR, StepLR


def param_with_grad(value, grad):
    p = Parameter(np.array(value, dtype=np.float64))
    p.grad = Tensor(np.array(grad, dtype=np.float64))
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = param_with_grad([1.0], [0.5])
        SGD([p], lr=0.1).step()
        assert np.isclose(p.data[0], 1.0 - 0.05)

    def test_momentum_matches_reference(self):
        """v <- mu v + g; p <- p - lr v (torch semantics)."""
        p = param_with_grad([0.0], [1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()  # v=1, p=-0.1
        p.grad = Tensor(np.array([1.0]))
        opt.step()  # v=1.9, p=-0.29
        assert np.isclose(p.data[0], -0.29)

    def test_nesterov(self):
        p = param_with_grad([0.0], [1.0])
        opt = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        opt.step()  # v=1, update = g + mu*v = 1.9 -> p = -0.19
        assert np.isclose(p.data[0], -0.19)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_weight_decay(self):
        p = param_with_grad([2.0], [0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert np.isclose(p.data[0], 2.0 - 0.1 * (0.5 * 2.0))

    def test_skips_grad_none(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=1.0).step()
        assert np.array_equal(p.data, np.ones(2))

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_param_groups_with_different_lrs(self):
        p1 = param_with_grad([0.0], [1.0])
        p2 = param_with_grad([0.0], [1.0])
        opt = SGD([{"params": [p1], "lr": 0.1}, {"params": [p2], "lr": 0.01}], lr=1.0)
        opt.step()
        assert np.isclose(p1.data[0], -0.1)
        assert np.isclose(p2.data[0], -0.01)

    def test_zero_grad(self):
        p = param_with_grad([0.0], [1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_duplicate_param_rejected(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([{"params": [p]}, {"params": [p]}], lr=0.1)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        """With bias correction the first Adam update ≈ lr * sign(g)."""
        p = param_with_grad([0.0], [3.0])
        Adam([p], lr=0.01).step()
        assert np.isclose(p.data[0], -0.01, atol=1e-6)

    def test_matches_reference_two_steps(self):
        lr, b1, b2, eps = 0.1, 0.9, 0.999, 1e-8
        p = param_with_grad([1.0], [2.0])
        opt = Adam([p], lr=lr, betas=(b1, b2), eps=eps)
        # manual reference
        m = v = 0.0
        theta = 1.0
        for step, g in enumerate([2.0, -1.0], start=1):
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * g * g
            mh, vh = m / (1 - b1**step), v / (1 - b2**step)
            theta -= lr * mh / (np.sqrt(vh) + eps)
        opt.step()
        p.grad = Tensor(np.array([-1.0]))
        opt.step()
        assert np.isclose(p.data[0], theta, atol=1e-10)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_adamw_decoupled_decay(self):
        """AdamW decays weights directly, independent of the gradient."""
        p_adamw = param_with_grad([1.0], [0.0])
        p_adam = param_with_grad([1.0], [0.0])
        AdamW([p_adamw], lr=0.1, weight_decay=0.1).step()
        Adam([p_adam], lr=0.1, weight_decay=0.1).step()
        # With zero gradient AdamW still shrinks the weight multiplicatively.
        assert np.isclose(p_adamw.data[0], 1.0 - 0.1 * 0.1 * 1.0)
        # Coupled Adam turns decay into a gradient and normalizes it to ~lr.
        assert p_adam.data[0] < p_adamw.data[0]

    def test_state_is_per_parameter(self):
        p1 = param_with_grad([0.0], [1.0])
        p2 = param_with_grad([0.0], [1.0])
        opt = Adam([p1, p2], lr=0.1)
        opt.step()
        assert opt.state_for(p1) is not opt.state_for(p2)
        assert opt.state_for(p1)["step"] == 1


class TestSchedulers:
    def _opt(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.param_groups[0]["lr"])
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.param_groups[0]["lr"], 0.0, atol=1e-12)

    def test_cosine_halfway(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        assert np.isclose(opt.param_groups[0]["lr"], 0.5)

    def test_lambda(self):
        opt = self._opt()
        sched = LambdaLR(opt, lambda epoch: 1.0 / (1 + epoch))
        sched.step()
        assert np.isclose(opt.param_groups[0]["lr"], 0.5)


class TestTrainingDecreasesLoss:
    @pytest.mark.parametrize("make_opt", [
        lambda ps: SGD(ps, lr=0.1),
        lambda ps: SGD(ps, lr=0.05, momentum=0.9),
        lambda ps: Adam(ps, lr=0.01),
        lambda ps: AdamW(ps, lr=0.01, weight_decay=0.01),
    ])
    def test_loss_decreases(self, make_opt):
        from repro.utils import manual_seed
        from repro.autograd import randn

        manual_seed(0)
        net = nn.Sequential(nn.Linear(5, 16), nn.Tanh(), nn.Linear(16, 1))
        x = randn(32, 5)
        y = randn(32, 1)
        opt = make_opt(list(net.parameters()))
        loss_fn = nn.MSELoss()
        first = loss_fn(net(x), y).item()
        for _ in range(100):
            opt.zero_grad()
            loss = loss_fn(net(x), y)
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.6
