"""Elastic scale-up: rejoin requests, flapping ranks, and boundaries.

Grows mirror the shrink tests' geometry: ``rejoin_rank(spot,
generation=g)`` matures *during* generation ``g``, the supervisor
aborts that generation exactly as it would for a death, and the
boundary admission re-rendezvouses the enlarged membership.  Loss
continuity is asserted **bitwise** against a *composed baseline* — a
sequence of plain elastic runs sharing one checkpoint directory with
the identical world schedule — because only identical world schedules
make float averaging exactly comparable.
"""

import time

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.optim import SGD
from repro.resilience import (
    ElasticConfig,
    FaultPlan,
    crash_rank,
    rejoin_rank,
    run_elastic,
)
from repro.sharded import ShardedDataParallel

from conftest import small_classifier

BUCKETS = 4
DDP_KWARGS = {"bucket_cap_mb": 0.0001}

_rng = np.random.default_rng(0)
X = _rng.standard_normal((24, 6))
Y = _rng.integers(0, 4, 24)
_loss_fn = nn.CrossEntropyLoss()


def setup(ctx):
    model = small_classifier()  # seeded: identical on every rank
    return model, SGD(model.parameters(), lr=0.05)


def step(ctx, model, opt, iteration):
    # Shard by spot-independent rank with a *fixed* per-rank batch, so
    # the same (iteration, rank) pair sees the same data at any world
    # size — the composed-baseline comparisons need that.
    shard = slice(ctx.rank * 4, (ctx.rank + 1) * 4)
    opt.zero_grad()
    loss = _loss_fn(model(Tensor(X[shard])), Y[shard])
    loss.backward()
    opt.step()
    # Keep each iteration longer than the supervisor's poll tick so a
    # generation cannot finish before pending rejoins are noticed
    # (numerics untouched — composed baselines run the same step).
    time.sleep(0.01)
    return float(loss.data)


def config(tmp_path, **overrides):
    defaults = dict(
        policy="shrink",
        checkpoint_dir=str(tmp_path),
        checkpoint_every=1,
        timeout=8.0,
        ddp_kwargs=dict(DDP_KWARGS),
    )
    defaults.update(overrides)
    return ElasticConfig(**defaults)


class TestGrow:
    def test_grow_admits_returning_spots(self, tmp_path):
        """2 -> 4: two rejoins mature in generation 0, both admitted."""
        plan = FaultPlan([rejoin_rank(2, generation=0),
                          rejoin_rank(3, generation=0)])
        res = run_elastic(
            2, setup, step, total_iterations=8,
            config=config(tmp_path, allow_grow=True, max_world_size=4),
            fault_plan=plan,
        )
        assert res.completed
        assert res.final_world_size == 4
        assert res.admissions == [2, 3]
        assert res.deaths == []
        assert res.generations[0]["grow_ready"] == [2, 3]
        assert res.generations[0]["admitted"] == [2, 3]
        assert res.iterations == 8

    def test_grow_loss_continuation_bitwise(self, tmp_path):
        """Grown-run losses equal a composed same-schedule baseline."""
        plan = FaultPlan([rejoin_rank(2, generation=0),
                          rejoin_rank(3, generation=0)])
        res = run_elastic(
            2, setup, step, total_iterations=8,
            config=config(tmp_path / "grown", allow_grow=True,
                          max_world_size=4),
            fault_plan=plan,
        )
        assert res.completed and res.final_world_size == 4
        boundary = res.generations[0]["end_iteration"]

        # Composed baseline: world 2 up to the observed boundary, then
        # world 4 to the end, through the same checkpoint protocol.
        base_cfg = config(tmp_path / "base")
        base_losses = []
        if boundary:
            first = run_elastic(2, setup, step, total_iterations=boundary,
                                config=base_cfg)
            base_losses += first.losses
        second = run_elastic(4, setup, step, total_iterations=8,
                             config=base_cfg)
        base_losses += second.losses
        assert base_losses == res.losses  # bitwise

    def test_kill_then_rejoin_two_generations_later(self, tmp_path):
        """Kill a rank in generation 0; it rejoins after generation 1."""
        plan = FaultPlan([
            crash_rank(3, scope="collective", op="allreduce",
                       after=1 * BUCKETS, times=1),
            rejoin_rank(3, generation=1),
        ])
        res = run_elastic(
            4, setup, step, total_iterations=10,
            config=config(tmp_path, allow_grow=True, max_world_size=4,
                          replication_factor=2),
            fault_plan=plan,
        )
        assert res.completed
        assert res.deaths == [3]
        assert res.admissions == [3]
        assert res.final_world_size == 4
        assert res.iterations == 10
        assert [g["world_size"] for g in res.generations] == [4, 3, 4]
        # The engine ran: every generation reports per-rank counters.
        stats = res.generations[-1]["checkpoint"]
        assert stats is not None
        assert all(s["saves"] > 0 for s in stats.values())
        assert all(s["replication_factor"] == 2 for s in stats.values())

    def test_grow_immediately_after_shrink(self, tmp_path):
        """A matured rejoin is admitted at the same boundary the death
        shrank the membership — net world size is unchanged."""
        plan = FaultPlan([
            crash_rank(2, scope="collective", op="allreduce",
                       after=1 * BUCKETS, times=1),
            rejoin_rank(2, generation=0),
        ])
        res = run_elastic(
            3, setup, step, total_iterations=6,
            config=config(tmp_path, allow_grow=True, max_world_size=3),
            fault_plan=plan,
        )
        assert res.completed
        assert res.deaths == [2]
        assert res.admissions == [2]
        assert [g["world_size"] for g in res.generations] == [3, 3]
        assert res.final_world_size == 3

    def test_grow_with_sharded_wrapper_resharding(self, tmp_path):
        """2 -> 4 under ZeRO-2: the consolidated checkpoint written at
        world 2 reshards into the world-4 layout bitwise."""
        plan = FaultPlan([rejoin_rank(2, generation=0),
                          rejoin_rank(3, generation=0)])
        wrapper = lambda module, group: ShardedDataParallel(  # noqa: E731
            module, lambda ps: SGD(ps, lr=0.05), process_group=group,
            bucket_cap_mb=0.0001,
        )

        def sharded_setup(ctx):
            return small_classifier(), None

        def sharded_step(ctx, model, optimizer, iteration):
            shard = slice(ctx.rank * 4, (ctx.rank + 1) * 4)
            model.zero_grad()
            loss = _loss_fn(model(Tensor(X[shard])), Y[shard])
            loss.backward()
            model.step()
            time.sleep(0.01)  # outlive the supervisor poll tick
            return float(loss.data)

        res = run_elastic(
            2, sharded_setup, sharded_step, total_iterations=8,
            config=config(tmp_path / "grown", allow_grow=True,
                          max_world_size=4, ddp_kwargs={}, wrapper=wrapper),
            fault_plan=plan,
        )
        assert res.completed
        assert res.final_world_size == 4
        assert res.admissions == [2, 3]
        boundary = res.generations[0]["end_iteration"]

        base_cfg = config(tmp_path / "base", ddp_kwargs={}, wrapper=wrapper)
        base_losses = []
        if boundary:
            first = run_elastic(2, sharded_setup, sharded_step,
                                total_iterations=boundary, config=base_cfg)
            base_losses += first.losses
        second = run_elastic(4, sharded_setup, sharded_step,
                             total_iterations=8, config=base_cfg)
        base_losses += second.losses
        assert base_losses == res.losses  # bitwise


class TestFlap:
    def test_flapped_rank_keeps_its_spot(self, tmp_path):
        """A heartbeat that goes stale then recovers within the
        generation aborts it, but the membership restarts unchanged."""
        flapped_once = [False]

        def flappy_step(ctx, model, opt, iteration):
            if (ctx.generation == 0 and ctx.rank == 1 and iteration == 2
                    and not flapped_once[0]):
                flapped_once[0] = True
                ctx.heartbeat.suspend(0.8)
                time.sleep(0.6)  # outlive miss_threshold while suspended
            return step(ctx, model, opt, iteration)

        res = run_elastic(
            2, setup, flappy_step, total_iterations=6,
            config=config(tmp_path, miss_threshold=0.3, allow_grow=True),
            fault_plan=FaultPlan([]),
        )
        assert res.completed
        assert res.final_world_size == 2
        assert res.deaths == []
        assert res.flaps == [1]
        assert res.generations[0]["flapped"] == [1]
        assert res.iterations == 6


class TestBoundaries:
    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError, match="max_world_size"):
            ElasticConfig(min_world_size=2, max_world_size=1)

    def test_bad_replication_factor_rejected(self):
        with pytest.raises(ValueError, match="replication_factor"):
            ElasticConfig(replication_factor=0)

    def test_initial_world_above_max_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_world_size"):
            run_elastic(
                4, setup, step, total_iterations=2,
                config=config(tmp_path, max_world_size=3),
            )

    def test_grow_clamped_at_max_world_size(self, tmp_path):
        """Two rejoins, one slot: the lowest spot is admitted, the other
        stays pending and never aborts a full-capacity generation."""
        plan = FaultPlan([rejoin_rank(2, generation=0),
                          rejoin_rank(3, generation=0)])
        res = run_elastic(
            2, setup, step, total_iterations=8,
            config=config(tmp_path, allow_grow=True, max_world_size=3),
            fault_plan=plan,
        )
        assert res.completed
        assert res.final_world_size == 3
        assert res.admissions == [2]
