"""Parameter averaging baseline and its §2.2 pitfalls."""

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.core import DistributedDataParallel
from repro.core.param_avg import ParameterAveragingTrainer, average_parameters
from repro.optim import SGD
from repro.utils import manual_seed

from conftest import run_world, small_classifier

RNG = np.random.default_rng(21)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


def local_reference(iters=6, momentum=0.9):
    model = small_classifier()
    opt = SGD(model.parameters(), lr=0.05, momentum=momentum)
    loss_fn = nn.CrossEntropyLoss()
    for _ in range(iters):
        opt.zero_grad()
        loss_fn(model(Tensor(X)), Y).backward()
        opt.step()
    return model.state_dict()


class TestAverageParameters:
    def test_average_equals_mean(self):
        def body(rank):
            manual_seed(rank)  # deliberately different weights
            model = nn.Linear(3, 2)
            pg = __import__("repro.comm", fromlist=["get_context"]).get_context().default_group
            before = model.weight.data.copy()
            average_parameters(model, pg)
            return before, model.weight.data.copy()

        results = run_world(2, body, backend="gloo")
        mean = (results[0][0] + results[1][0]) / 2
        assert np.allclose(results[0][1], mean)
        assert np.allclose(results[1][1], mean)


class TestDivergenceFromLocalTraining:
    """The paper's §2.2 argument, measured.

    A subtlety the measurement surfaces: with *per-step* averaging and a
    purely linear optimizer (SGD+momentum), parameter averaging happens
    to commute with gradient averaging.  The divergence the paper warns
    about appears once the optimizer state is a nonlinear function of
    local gradients (Adam's second moment) or once averaging is
    periodic (parameters drift apart between averages).
    """

    def _adam_reference(self, iters=6):
        from repro.optim import Adam

        model = small_classifier()
        opt = Adam(model.parameters(), lr=0.05)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(iters):
            opt.zero_grad()
            loss_fn(model(Tensor(X)), Y).backward()
            opt.step()
        return model.state_dict()

    def test_adam_states_diverge_but_ddp_matches(self):
        from repro.optim import Adam

        reference = self._adam_reference()

        def ddp_body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            opt = Adam(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(6):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        def avg_body(rank):
            from repro.comm import get_context

            model = small_classifier()
            pg = get_context().default_group
            opt = Adam(model.parameters(), lr=0.05)
            trainer = ParameterAveragingTrainer(model, opt, pg)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(6):
                trainer.zero_grad()
                loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
                trainer.step()
            return model.state_dict()

        ddp_states = run_world(2, ddp_body, backend="gloo")
        avg_states = run_world(2, avg_body, backend="gloo")

        ddp_err = max(
            np.abs(ddp_states[0][n] - reference[n]).max() for n in reference
        )
        avg_err = max(
            np.abs(avg_states[0][n] - reference[n]).max() for n in reference
        )
        assert ddp_err < 1e-9
        assert avg_err > 1000 * max(ddp_err, 1e-12)

    def test_periodic_averaging_diverges_even_with_momentum(self):
        reference = local_reference(iters=6, momentum=0.9)

        def avg_body(rank):
            from repro.comm import get_context

            model = small_classifier()
            pg = get_context().default_group
            opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
            trainer = ParameterAveragingTrainer(model, opt, pg, average_every=2)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(6):
                trainer.zero_grad()
                loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
                trainer.step()
            return model.state_dict()

        avg_states = run_world(2, avg_body, backend="gloo")
        avg_err = max(
            np.abs(avg_states[0][n] - reference[n]).max() for n in reference
        )
        assert avg_err > 1e-6

    def test_per_step_averaging_with_linear_optimizer_matches(self):
        """The commuting case: per-step averaging + momentum SGD equals
        gradient averaging (the divergence needs nonlinearity)."""
        reference = local_reference(iters=4, momentum=0.9)

        def avg_body(rank):
            from repro.comm import get_context

            model = small_classifier()
            pg = get_context().default_group
            opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
            trainer = ParameterAveragingTrainer(model, opt, pg)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(4):
                trainer.zero_grad()
                loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
                trainer.step()
            return model.state_dict()

        avg_states = run_world(2, avg_body, backend="gloo")
        for name in reference:
            assert np.allclose(avg_states[0][name], reference[name], atol=1e-9)

    def test_without_momentum_single_average_matches_gradient_averaging(self):
        """Plain SGD, one iteration: averaging parameters after the step
        equals averaging gradients before it (the divergence needs
        stateful optimizers or multiple steps)."""

        def avg_body(rank):
            from repro.comm import get_context

            model = small_classifier()
            pg = get_context().default_group
            opt = SGD(model.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            opt.zero_grad()
            loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
            opt.step()
            average_parameters(model, pg)
            return model.state_dict()

        reference = local_reference(iters=1, momentum=0.0)
        avg_states = run_world(2, avg_body, backend="gloo")
        for name in reference:
            assert np.allclose(avg_states[0][name], reference[name], atol=1e-9)


class TestTrainerMechanics:
    def test_average_every_n(self):
        def body(rank):
            from repro.comm import get_context

            manual_seed(rank)
            model = nn.Linear(2, 2)
            pg = get_context().default_group
            opt = SGD(model.parameters(), lr=0.0)  # no local movement
            trainer = ParameterAveragingTrainer(model, opt, pg, average_every=2)
            w0 = model.weight.data.copy()
            model.weight.grad = Tensor(np.zeros_like(model.weight.data))
            trainer.step()  # no averaging yet
            unchanged = np.allclose(model.weight.data, w0)
            trainer.step()  # averaging happens
            return unchanged, model.weight.data.copy()

        results = run_world(2, body, backend="gloo")
        assert results[0][0] and results[1][0]
        assert np.allclose(results[0][1], results[1][1])

    def test_invalid_average_every(self):
        import pytest

        with pytest.raises(ValueError):
            ParameterAveragingTrainer(None, None, None, average_every=0)
