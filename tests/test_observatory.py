"""Performance observatory: sampler, exporter, profiler, merged timeline.

Covers the observatory acceptance surface: pooled-sample percentile
merging, time-series sampling with cross-rank aggregation (including
the teardown flush and the latency step under an injected straggler),
a Prometheus exposition that passes a line-format checker and a live
scrape, critical-path attribution that sums to measured iteration wall
time within 2% and agrees with the recorder's overlap ratio, and the
merged spans + flight-recorder + resilience Chrome trace.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.request

import numpy as np
import pytest

from conftest import run_world
from repro import nn, optim, telemetry
from repro.autograd import Tensor
from repro.core import DistributedDataParallel
from repro.telemetry.metrics import (
    MetricsRegistry,
    merge_snapshots,
    percentile_of,
    registry_for,
)
from repro.telemetry.observatory import (
    CriticalPathProfiler,
    MetricsSampler,
    PrometheusExporter,
    profile_from_detail,
    prometheus_text,
    start_exporter,
)
from repro.utils import manual_seed


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry off and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def _train_ddp(rank, iterations=3, width=64, bucket_cap_mb=0.02):
    """One rank of a real multi-bucket DDP training loop."""
    manual_seed(0)
    net = nn.Sequential(
        nn.Linear(32, width), nn.ReLU(), nn.Linear(width, width), nn.ReLU(),
        nn.Linear(width, 8)
    )
    ddp = DistributedDataParallel(net, bucket_cap_mb=bucket_cap_mb)
    opt = optim.SGD(ddp.parameters(), lr=0.01)
    rng = np.random.default_rng(rank)
    for _ in range(iterations):
        inp = Tensor(rng.standard_normal((16, 32)))
        exp = rng.integers(0, 8, 16)
        opt.zero_grad()
        nn.CrossEntropyLoss()(ddp(inp), exp).backward()
        opt.step()
    return ddp


# ----------------------------------------------------------------------
# interpolated percentiles + pooled cross-rank merge
# ----------------------------------------------------------------------
class TestPercentiles:
    def test_percentile_interpolates_between_samples(self):
        # Two samples: p50 must be the midpoint, not either endpoint.
        assert percentile_of([0.0, 10.0], 50) == pytest.approx(5.0)
        # Matches numpy's default (linear) method on a bigger pool.
        pool = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3, 5.8, 9.7, 9.3])
        for q in (50, 90, 95, 99):
            assert percentile_of(pool, q) == pytest.approx(
                float(np.percentile(pool, q))
            )

    def test_histogram_summary_interpolates(self):
        registry = MetricsRegistry(rank=0)
        hist = registry.histogram("lat")
        for value in range(1, 11):  # 1..10
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["p50"] == pytest.approx(5.5)
        assert summary["p95"] == pytest.approx(float(np.percentile(range(1, 11), 95)))
        assert summary["p99"] == pytest.approx(float(np.percentile(range(1, 11), 99)))

    def test_merge_pools_samples_across_ranks(self):
        # Rank 0 sees only fast samples, rank 1 only slow ones.  The
        # merged p99 must come from the pooled data — averaging the two
        # per-rank p99s would land mid-gap where no sample exists.
        r0, r1 = MetricsRegistry(rank=0), MetricsRegistry(rank=1)
        for _ in range(50):
            r0.histogram("lat").observe(1.0)
            r1.histogram("lat").observe(100.0)
        merged = merge_snapshots([r0.snapshot(), r1.snapshot()])
        entry = merged["histograms"]["lat"]
        pooled = sorted([1.0] * 50 + [100.0] * 50)
        assert entry["p99"] == pytest.approx(float(np.percentile(pooled, 99)))
        assert entry["p50"] == pytest.approx(float(np.percentile(pooled, 50)))
        assert entry["samples_pooled"] == 100
        per_rank_mean_p99 = (1.0 + 100.0) / 2
        assert entry["p99"] != pytest.approx(per_rank_mean_p99)


# ----------------------------------------------------------------------
# sampler + series
# ----------------------------------------------------------------------
class TestMetricsSampler:
    def test_manual_ticks_build_per_rank_and_aggregate_series(self):
        registry_for(0).counter("work.done").add(5)
        registry_for(1).counter("work.done").add(7)
        registry_for(0).histogram("lat").observe(0.010)
        registry_for(1).histogram("lat").observe(0.030)
        sampler = MetricsSampler(interval=0.05)
        generation = sampler.sample_once()
        assert generation == 0
        rank0 = sampler.series("work.done", rank=0)
        assert rank0.latest().value == 5
        aggregate = sampler.series("work.done")  # rank=None
        agg = aggregate.latest().value
        assert agg["sum"] == 12 and agg["min"] == 5 and agg["max"] == 7
        assert agg["mean"] == pytest.approx(6.0)
        lat = sampler.series("lat").latest().value
        assert lat["count"] == 2
        assert "p99" in lat

    def test_series_ring_is_bounded_and_generations_advance(self):
        registry_for(0).gauge("g").set(1.0)
        sampler = MetricsSampler(interval=0.05, capacity=4)
        for _ in range(7):
            sampler.sample_once()
        series = sampler.series("g", rank=0)
        assert len(series) == 4
        generations = [p.generation for p in series.points()]
        assert generations == [3, 4, 5, 6]
        assert series.at_generation(5).value == 1.0
        assert series.at_generation(0) is None  # evicted

    def test_background_thread_samples_and_stops(self):
        registry_for(0).counter("ticks").add(1)
        sampler = MetricsSampler(interval=0.02).start()
        assert sampler.running
        time.sleep(0.12)
        sampler.stop()
        assert not sampler.running
        assert sampler.generation >= 3
        assert len(sampler.ticks()) == sampler.generation + 1

    def test_dump_jsonl(self, tmp_path):
        registry_for(0).counter("c").add(2)
        registry_for(0).histogram("h").observe(1.5)
        sampler = MetricsSampler(interval=0.05)
        sampler.sample_once()
        sampler.sample_once()
        path = sampler.dump_jsonl(str(tmp_path / "metrics.jsonl"))
        lines = [json.loads(line) for line in open(path)]
        assert [tick["generation"] for tick in lines] == [0, 1]
        assert lines[0]["aggregate"]["c"]["sum"] == 2
        assert lines[0]["per_rank"][0]["histograms"]["h"]["count"] == 1

    def test_teardown_flushes_running_sampler(self):
        # Interval far longer than the run: the only tick can come from
        # DistributedContext.close() flushing active samplers.
        telemetry.enable()
        sampler = MetricsSampler(interval=60.0).start()
        try:
            run_world(2, lambda rank: (_train_ddp(rank, iterations=2), None)[1],
                      backend="gloo")
            assert sampler.generation >= 0
            assert sampler.series("iterations.synced", rank=0) is not None
        finally:
            sampler.stop(final_sample=False)


# ----------------------------------------------------------------------
# Prometheus exporter
# ----------------------------------------------------------------------
#: One exposition line: metric name, optional labels, then a float.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (NaN|[+-]Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)
_TYPE_LINE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$")


def check_exposition_format(text: str):
    """Assert every line is a valid type comment or sample line."""
    lines = [line for line in text.split("\n") if line]
    assert lines, "empty exposition"
    for line in lines:
        if line.startswith("#"):
            assert _TYPE_LINE.match(line), f"bad TYPE line: {line!r}"
        else:
            assert _SAMPLE_LINE.match(line), f"bad sample line: {line!r}"
    return lines


class TestPrometheusExporter:
    def test_exposition_passes_line_format_checker(self):
        registry_for(0).counter("allreduce.calls").add(3)
        registry_for(1).counter("allreduce.calls").add(4)
        registry_for(0).gauge("iteration.overlap_ratio").set(0.75)
        for v in (0.01, 0.02, 0.05):
            registry_for(0).histogram("allreduce.latency").observe(v)
        text = prometheus_text()
        lines = check_exposition_format(text)
        assert 'repro_allreduce_calls_total{rank="0"} 3.0' in lines
        assert 'repro_allreduce_calls_total{rank="1"} 4.0' in lines
        assert 'repro_iteration_overlap_ratio{rank="0"} 0.75' in lines
        quantiles = [l for l in lines if "quantile=" in l]
        assert len(quantiles) == 3  # p50/p95/p99 for the one histogram
        assert any(l.startswith("repro_allreduce_latency_sum") for l in lines)
        assert any(l.startswith("repro_allreduce_latency_count") for l in lines)

    def test_metric_name_sanitization(self):
        from repro.telemetry.observatory.exporter import metric_name

        assert metric_name("bucket.ready_to_launch_delay") == \
            "repro_bucket_ready_to_launch_delay"
        assert metric_name("9lives!") == "repro__9lives_"

    def test_live_scrape_over_http(self):
        registry_for(0).counter("scrape.hits").add(2)
        exporter = start_exporter(port=0)
        try:
            with urllib.request.urlopen(exporter.url, timeout=5) as response:
                assert response.status == 200
                assert "version=0.0.4" in response.headers["Content-Type"]
                body = response.read().decode()
            lines = check_exposition_format(body)
            assert 'repro_scrape_hits_total{rank="0"} 2.0' in lines
            # Non-metrics paths 404.
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    exporter.url.replace("/metrics", "/nope"), timeout=5)
        finally:
            exporter.close()


# ----------------------------------------------------------------------
# critical-path profiler
# ----------------------------------------------------------------------
def _fig06_workload(world=4, width=192, depth=2, iterations=8):
    """The bench_fig06_breakdown measured workload, test-sized."""
    stats_by_rank = {}

    def body(rank):
        manual_seed(0)
        layers = [nn.Linear(64, width), nn.ReLU()]
        for _ in range(depth - 1):
            layers += [nn.Linear(width, width), nn.ReLU()]
        layers += [nn.Linear(width, 8)]
        ddp = DistributedDataParallel(nn.Sequential(*layers), bucket_cap_mb=0.25)
        opt = optim.SGD(ddp.parameters(), lr=0.01)
        rng = np.random.default_rng(rank)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(iterations):
            inp = Tensor(rng.standard_normal((64, 64)))
            exp = rng.integers(0, 8, 64)
            opt.zero_grad()
            loss_fn(ddp(inp), exp).backward()
            opt.step()
        stats_by_rank[rank] = ddp.ddp_stats()
        return None

    run_world(world, body, backend="gloo", timeout=60.0)
    return stats_by_rank


class TestCriticalPathProfiler:
    def test_attribution_sums_to_iteration_wall_time(self):
        telemetry.enable()
        stats_by_rank = _fig06_workload()
        profiler = CriticalPathProfiler()
        profiles = profiler.profiles()
        # Every retained (iteration, rank) pair gets a profile.
        assert len(profiles) == 4 * 8
        for profile in profiles:
            total = profile.total_s
            assert total > 0
            attributed = sum(profile.attribution().values())
            assert attributed == pytest.approx(total, rel=0.02), (
                f"attribution {attributed} vs wall {total} "
                f"(iteration {profile.iteration}, rank {profile.rank})"
            )

    def test_overlap_ratio_agrees_with_recorder(self):
        telemetry.enable()
        stats_by_rank = _fig06_workload(iterations=4)
        profiler = CriticalPathProfiler()
        for rank, stats in stats_by_rank.items():
            profile = profiler.profile(rank=rank)  # latest iteration
            assert profile is not None
            assert profile.overlap_ratio == pytest.approx(
                stats["comm_compute_overlap_ratio"], abs=1e-9
            )

    def test_profile_from_detail_matches_span_profiler(self):
        telemetry.enable()
        stats_by_rank = _fig06_workload(iterations=4)
        prof = stats_by_rank[0]["profile"]
        assert prof is not None
        att = prof["attribution_ms"]
        assert sum(att.values()) == pytest.approx(prof["total_ms"], rel=0.02)
        assert prof["overlap_ratio"] == pytest.approx(
            stats_by_rank[0]["comm_compute_overlap_ratio"], abs=1e-9
        )
        assert 1 <= len(prof["blame"]) <= 3
        shares = [b["share_of_exposed"] for b in prof["blame"]]
        assert shares == sorted(shares, reverse=True)

    def test_profile_works_with_telemetry_disabled(self):
        # The recorder's coarse clock is always on, so ddp_stats carries
        # a profile even without spans.
        stats_by_rank = _fig06_workload(world=2, iterations=2)
        prof = stats_by_rank[0]["profile"]
        assert prof is not None
        assert sum(prof["attribution_ms"].values()) == pytest.approx(
            prof["total_ms"], rel=0.02
        )
        # But the span profiler has nothing.
        assert CriticalPathProfiler().profiles() == []

    def test_blame_table_and_straggler_summary(self):
        telemetry.enable()
        _fig06_workload(iterations=4)
        profiler = CriticalPathProfiler()
        table = profiler.last_profile().blame_table()
        assert "critical path" in table and "exposed" in table
        summary = profiler.straggler_summary()
        assert summary.iterations == 4
        assert sum(summary.finish_counts.values()) == 4
        assert re.match(r"rank \d+ is the straggler on \d+/4 iterations",
                        summary.describe())

    def test_profile_from_detail_empty(self):
        assert profile_from_detail({}) is None


# ----------------------------------------------------------------------
# straggler detection + sampler series under fault injection
# ----------------------------------------------------------------------
class TestInjectedStraggler:
    def test_slow_rank_is_named_and_series_shows_the_step(self):
        from repro.resilience.faults import FaultPlan, slow_rank

        world, slow, delay = 3, 1, 0.05
        # Scope the wire fault to the "hot" probe tag so group-setup
        # traffic and the warm-up probes stay fast: generation 0 samples
        # the healthy send cost, generation 1 the injected one.
        plan = FaultPlan([slow_rank(slow, delay, tag_contains="hot")], seed=0)
        sampler = MetricsSampler(interval=60.0)  # manual ticks only
        barrier = threading.Barrier(world)
        reports = {}

        def probe_send(rank, context, tag):
            """Time one ring send; the fault sleeps on the sender."""
            t0 = time.perf_counter()
            context.hub.send(rank, (rank + 1) % world, (tag, rank), np.zeros(8))
            elapsed = time.perf_counter() - t0
            registry_for(rank).gauge("probe.send_s").set(elapsed)
            return elapsed

        def body(rank):
            from repro.comm.distributed import get_context

            context = get_context()
            group = context.default_group
            left = (rank - 1) % world
            # Phase A: healthy sends (and drain the ring neighbor's).
            probe_send(rank, context, "warm")
            context.hub.recv(rank, left, ("warm", left), timeout=10.0)
            barrier.wait()
            if rank == 0:
                sampler.sample_once()   # generation 0: healthy latencies
            barrier.wait()
            # Phase B: the fault fires on the slow rank's probe.
            elapsed = probe_send(rank, context, "hot")
            context.hub.recv(rank, left, ("hot", left), timeout=10.0)
            barrier.wait()
            if rank == 0:
                sampler.sample_once()   # generation 1: the step
            barrier.wait()
            reports[rank] = telemetry.detect_stragglers(
                group, elapsed, threshold=1.5
            )
            return None

        telemetry.enable()
        run_world(world, body, backend="gloo", fault_plan=plan, timeout=30.0)

        # The straggler detector names the injected rank on every rank.
        for rank, report in reports.items():
            assert report.stragglers == [slow]
            assert report.is_straggler == (rank == slow)

        # The slow rank's latency series steps up at generation 1.
        series = sampler.series("probe.send_s", rank=slow)
        healthy = series.at_generation(0).value
        injected = series.at_generation(1).value
        assert healthy < delay / 2
        assert injected >= delay * 0.9
        # Healthy ranks show no such step.
        for rank in range(world):
            if rank == slow:
                continue
            other = sampler.series("probe.send_s", rank=rank)
            assert other.at_generation(1).value < delay / 2


# ----------------------------------------------------------------------
# merged timeline
# ----------------------------------------------------------------------
class TestMergedTimeline:
    def test_merged_trace_has_all_three_tracks(self, tmp_path):
        from repro.debug.levels import get_debug_level, set_debug_level
        from repro.resilience.faults import FaultPlan, corrupt
        from repro.resilience.transport import ReliableTransportHub

        telemetry.enable()
        previous = get_debug_level()
        set_debug_level("INFO")
        try:
            # Spans + flight records from a real 2-rank DDP run...
            run_world(2, lambda rank: (_train_ddp(rank, iterations=2), None)[1],
                      backend="gloo")
            # ...and resilience instants from a reliable hub surviving a
            # corrupted delivery (detect -> retransmit markers).
            hub = ReliableTransportHub(2, default_timeout=10.0)
            hub.install_fault_plan(FaultPlan([corrupt(times=1)], seed=0))
            payload = np.arange(16, dtype=np.float64)
            sender = threading.Thread(
                target=hub.send, args=(0, 1, "blob", payload), daemon=True
            )
            sender.start()
            received = hub.recv(1, 0, "blob", timeout=10.0)
            sender.join(timeout=5.0)
            np.testing.assert_array_equal(received, payload)
            assert hub.corrupt_detected[1] == 1

            from repro.telemetry import export_merged_trace, merged_trace_events

            events = merged_trace_events()
            categories = {e.get("cat") for e in events if e.get("cat")}
            assert {"compute", "comm", "iteration", "flight"} <= categories
            assert "resilience" in categories

            # Resilience events are instant markers, flight rows are bars.
            resilience = [e for e in events if e.get("cat") == "resilience"]
            assert resilience and all(e["ph"] == "i" for e in resilience)
            assert {e["name"] for e in resilience} >= {"corrupt_detected",
                                                       "retransmit"}
            flight = [e for e in events if e.get("cat") == "flight"]
            assert flight and all(e["ph"] == "X" for e in flight)
            assert any(re.match(r"allreduce#\d+", e["name"]) for e in flight)
            assert all(e["args"]["state"] == "completed" for e in flight
                       if e["name"].startswith("allreduce"))

            # Distinct named rows: spans, flight, resilience per rank.
            thread_names = {
                (e["pid"], e["args"]["name"])
                for e in events if e.get("name") == "thread_name"
            }
            assert (0, "compute") in thread_names
            assert (0, "flight") in thread_names
            assert (1, "resilience") in thread_names

            # The export round-trips as Perfetto-loadable JSON.
            path = export_merged_trace(str(tmp_path / "merged.json"))
            document = json.load(open(path))
            assert document["traceEvents"]
            timestamps = [e["ts"] for e in document["traceEvents"]
                          if e["ph"] != "M"]
            assert min(timestamps) >= 0.0  # rebased to the shared epoch
        finally:
            set_debug_level(previous)
            from repro.debug.flight_recorder import clear_recorders

            clear_recorders()

    def test_merged_trace_empty_when_nothing_recorded(self):
        from repro.telemetry import merged_trace_events

        assert merged_trace_events() == []


# ----------------------------------------------------------------------
# histogram edge cases: empty, single-sample, NaN guard
# ----------------------------------------------------------------------
class TestHistogramEdgeCases:
    def test_empty_histogram_summary_is_all_zeros(self):
        hist = MetricsRegistry(rank=0).histogram("empty")
        summary = hist.summary()
        assert summary["count"] == 0 and summary["sum"] == 0.0
        assert summary["min"] == 0.0 and summary["max"] == 0.0
        assert summary["p50"] == summary["p95"] == summary["p99"] == 0.0
        assert hist.percentile(99) is None
        with pytest.raises(ValueError):
            percentile_of([], 50)

    def test_single_sample_serves_itself_at_every_percentile(self):
        hist = MetricsRegistry(rank=0).histogram("one")
        hist.observe(7.5)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["mean"] == summary["min"] == summary["max"] == 7.5
        assert summary["p50"] == summary["p95"] == summary["p99"] == 7.5
        assert percentile_of([7.5], 99) == 7.5

    def test_nan_observations_are_dropped_not_poisonous(self):
        hist = MetricsRegistry(rank=0).histogram("guarded")
        hist.observe(1.0)
        hist.observe(float("nan"))
        hist.observe(3.0)
        assert hist.count == 2
        assert hist.nan_ignored == 1
        summary = hist.summary()
        assert summary["sum"] == 4.0 and summary["mean"] == 2.0
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        # Every served number is a number.
        assert all(v == v for k, v in summary.items() if k != "samples")

    def test_zero_capacity_ring_serves_mean_for_percentiles(self):
        from repro.telemetry.metrics import Histogram

        hist = Histogram("ringless", sample_capacity=0)
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["p50"] == summary["p99"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# merge_snapshots over ragged keysets (shrink recovery)
# ----------------------------------------------------------------------
class TestMergeRaggedSnapshots:
    def test_ranks_need_not_share_a_keyset(self):
        # Rank 1 died before ever touching the histogram or the counter
        # (shrink-to-survive recovery): it must not zero out or poison
        # the survivors' aggregates.
        r0, r1 = MetricsRegistry(rank=0), MetricsRegistry(rank=1)
        r0.counter("steps").add(5)
        r0.histogram("lat").observe(0.5)
        r1.gauge("alive").set(0.0)
        merged = merge_snapshots([r0.snapshot(), r1.snapshot()])
        assert merged["ranks"] == [0, 1]
        assert merged["counters"]["steps"] == 5
        assert merged["histograms"]["lat"]["count"] == 1
        assert merged["histograms"]["lat"]["p99"] == pytest.approx(0.5)
        assert merged["gauges"]["alive"]["per_rank"] == {1: 0.0}

    def test_tick_style_summaries_without_samples_merge(self):
        # Sampler ticks drop the raw sample list; the merge must still
        # pool count/sum/min/max and fall back cleanly on percentiles.
        tick_hist = {"count": 4, "sum": 8.0, "min": 1.0, "max": 3.0}
        live = MetricsRegistry(rank=0)
        live.histogram("lat").observe(10.0)
        merged = merge_snapshots([
            live.snapshot(),
            {"rank": 1, "counters": {}, "gauges": {},
             "histograms": {"lat": tick_hist}},
        ])
        entry = merged["histograms"]["lat"]
        assert entry["count"] == 5 and entry["sum"] == 18.0
        assert entry["min"] == 1.0 and entry["max"] == 10.0
        # Percentiles come from the one retained sample pool.
        assert entry["samples_pooled"] == 1
        assert entry["p50"] == pytest.approx(10.0)

    def test_malformed_histogram_entries_are_skipped(self):
        merged = merge_snapshots([
            {"rank": 0, "counters": {}, "gauges": {},
             "histograms": {"lat": "garbage"}},
        ])
        assert merged["histograms"] == {}


# ----------------------------------------------------------------------
# exporter lifecycle: concurrent scrapes, idempotent close, env opt-in
# ----------------------------------------------------------------------
class TestExporterLifecycle:
    def test_concurrent_scrapes_all_succeed(self):
        registry_for(0).counter("busy.metric").add(1)
        exporter = start_exporter(port=0)
        results, errors = [], []

        def scrape():
            try:
                with urllib.request.urlopen(exporter.url, timeout=10) as resp:
                    results.append((resp.status, resp.read().decode()))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        try:
            threads = [threading.Thread(target=scrape) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert not errors
            assert len(results) == 8
            for status, body in results:
                assert status == 200
                assert "repro_busy_metric_total" in body
        finally:
            exporter.close()

    def test_close_is_idempotent_and_releases_the_port(self):
        exporter = start_exporter(port=0)
        assert not exporter.closed
        exporter.close()
        assert exporter.closed
        exporter.close()  # second close is a no-op, not an error
        with pytest.raises(Exception):
            urllib.request.urlopen(exporter.url, timeout=2)
        # The port is free again: a new exporter can bind it.
        rebound = PrometheusExporter("127.0.0.1", exporter.port)
        try:
            assert rebound.port == exporter.port
        finally:
            rebound.close()

    def test_env_opt_in_lifecycle(self, monkeypatch):
        from repro.telemetry.observatory import (
            maybe_start_from_env,
            stop_env_exporter,
        )

        monkeypatch.delenv("REPRO_METRICS_PORT", raising=False)
        assert maybe_start_from_env() is None
        monkeypatch.setenv("REPRO_METRICS_PORT", "not-a-port")
        assert maybe_start_from_env() is None
        monkeypatch.setenv("REPRO_METRICS_PORT", "0")
        exporter = maybe_start_from_env()
        try:
            assert exporter is not None
            # Asking for a scrape endpoint implies enabling telemetry.
            assert telemetry.is_enabled()
            # Idempotent: a second call returns the same running server.
            assert maybe_start_from_env() is exporter
            with urllib.request.urlopen(exporter.url, timeout=5) as resp:
                assert resp.status == 200
        finally:
            stop_env_exporter()
        assert exporter.closed
        # The slate is clean: a later opt-in starts a fresh server.
        monkeypatch.setenv("REPRO_METRICS_PORT", "0")
        fresh = maybe_start_from_env()
        assert fresh is not None and fresh is not exporter
        stop_env_exporter()
        assert fresh.closed
