"""Cross-feature interaction coverage: combinations the paper's design
must support simultaneously."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, randn
from repro.core import DistributedDataParallel, comm_hooks
from repro.models import BranchedModel
from repro.optim import SGD
from repro.utils import manual_seed

from conftest import run_world, small_classifier

RNG = np.random.default_rng(71)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


class TestNcclBitmapStaging:
    """find_unused_parameters on the NCCL backend exercises the §4.2
    CPU-bitmap -> device-bitmap staging (NCCL rejects CPU tensors)."""

    def test_unused_params_with_nccl(self):
        def body(rank):
            manual_seed(9)
            model = BranchedModel().to("gpu:0")
            ddp = DistributedDataParallel(model, find_unused_parameters=True)
            x = Tensor(np.ones((2, 8)))
            nn.CrossEntropyLoss()(ddp(x, branch=0), np.zeros(2, dtype=np.int64)).backward()
            used = all(p.grad is not None for p in model.branches[0].parameters())
            untouched = all(p.grad is None for p in model.branches[1].parameters())
            return used, untouched

        assert run_world(2, body, backend="nccl") == [(True, True)] * 2

    def test_cpu_model_with_nccl_fails_loudly(self):
        """A CPU-tagged model on the NCCL backend is rejected at the
        constructor broadcast, not deep inside the backward pass."""

        def body(rank):
            DistributedDataParallel(small_classifier())  # cpu params

        with pytest.raises(RuntimeError, match="cpu"):
            run_world(2, body, backend="nccl", timeout=3)


class TestHookAndNoSync:
    def test_compression_hook_respects_no_sync(self):
        """Inside no_sync, no communication happens even with a hook."""

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(
                model, comm_hook=comm_hooks.fp16_compress_hook
            )
            hub = ddp.process_group.hub
            loss_fn = nn.CrossEntropyLoss()
            baseline = hub.bytes_sent[rank]
            with ddp.no_sync():
                loss_fn(ddp(Tensor(X[:4])), Y[:4]).backward()
            silent = hub.bytes_sent[rank] - baseline
            loss_fn(ddp(Tensor(X[:4])), Y[:4]).backward()
            talked = hub.bytes_sent[rank] - baseline - silent
            return silent, talked

        results = run_world(2, body, backend="gloo")
        for silent, talked in results:
            assert silent == 0
            assert talked > 0

    def test_accumulated_then_compressed_sync_matches_plain(self):
        """no_sync accumulation followed by an fp16-compressed sync
        produces the same (within fp16) gradients as uncompressed."""

        def run_with(hook):
            def body(rank):
                model = small_classifier()
                ddp = DistributedDataParallel(model, comm_hook=hook)
                loss_fn = nn.CrossEntropyLoss()
                shard = slice(rank * 4, (rank + 1) * 4)
                with ddp.no_sync():
                    loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                return {n: p.grad.data.copy() for n, p in model.named_parameters()}

            return run_world(2, body, backend="gloo")

        plain = run_with(None)
        compressed = run_with(comm_hooks.fp16_compress_hook)
        for name in plain[0]:
            scale = np.abs(plain[0][name]).max() + 1e-12
            assert np.abs(plain[0][name] - compressed[0][name]).max() / scale < 5e-3


class TestOverlapOffCombos:
    def test_no_overlap_with_find_unused(self):
        def body(rank):
            manual_seed(9)
            model = BranchedModel()
            ddp = DistributedDataParallel(
                model, overlap=False, find_unused_parameters=True
            )
            x = Tensor(np.ones((2, 8)))
            nn.CrossEntropyLoss()(ddp(x, branch=rank % 2), np.zeros(2, dtype=np.int64)).backward()
            return ddp.reducer.finalized

        assert all(run_world(2, body, backend="gloo"))

    def test_no_overlap_with_comm_hook(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(
                model, overlap=False, comm_hook=comm_hooks.quantize8_hook
            )
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return all(p.grad is not None for p in model.parameters())

        assert all(run_world(2, body, backend="gloo"))


class TestEngineErrorPaths:
    def test_backward_too_few_grads_detected(self):
        from repro.autograd.function import Context, Function

        class Lopsided(Function):
            @staticmethod
            def forward(ctx: Context, a, b):
                return a + b

            @staticmethod
            def backward(ctx: Context, grad):
                return (grad,)  # forgot b's gradient

        a = randn(3, requires_grad=True)
        b = randn(3, requires_grad=True)
        with pytest.raises(RuntimeError, match="returned 1 gradients"):
            Lopsided.apply(a, b).sum().backward()

    def test_context_attributes_roundtrip(self):
        from repro.autograd.function import Context

        ctx = Context()
        ctx.save_for_backward(np.ones(2), np.zeros(3))
        ctx.anything = "custom"
        assert len(ctx.saved) == 2
        assert ctx.anything == "custom"


class TestZeroBucketWithEverything:
    def test_per_gradient_buckets_with_unused_and_momentum(self):
        """The most adversarial functional combo: 0MB buckets (one per
        gradient), dynamic graphs, and momentum — replicas still agree."""

        def body(rank):
            manual_seed(9)
            model = BranchedModel(num_branches=2)
            ddp = DistributedDataParallel(
                model, bucket_cap_mb=0.0, find_unused_parameters=True
            )
            opt = SGD(ddp.parameters(), lr=0.05, momentum=0.9)
            loss_fn = nn.CrossEntropyLoss()
            rng = np.random.default_rng(5)  # same stream on both ranks
            for it in range(4):
                x = Tensor(rng.standard_normal((4, 8)))
                y = rng.integers(0, 4, 4)
                opt.zero_grad()
                loss_fn(ddp(x, branch=(it + rank) % 2), y).backward()
                opt.step()
            return ddp.state_dict()

        states = run_world(2, body, backend="gloo")
        for name in states[0]:
            assert np.allclose(states[0][name], states[1][name])
