"""Single-process multi-thread DataParallel (paper §2.2)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core import DataParallel
from repro.optim import SGD
from repro.utils import manual_seed

RNG = np.random.default_rng(81)
X = RNG.standard_normal((12, 6))
Y = RNG.integers(0, 4, 12)


def make_model():
    manual_seed(33)
    return nn.Sequential(nn.Linear(6, 16), nn.Tanh(), nn.Linear(16, 4))


class TestForwardSemantics:
    def test_output_matches_single_replica(self):
        model = make_model()
        dp = DataParallel(model, num_replicas=3)
        expected = model(Tensor(X))
        out = dp(Tensor(X))
        assert out.shape == expected.shape
        assert np.allclose(out.data, expected.data)

    def test_ragged_batches(self):
        dp = DataParallel(make_model(), num_replicas=4)
        out = dp(Tensor(X[:7]))  # 7 rows across 4 workers
        assert out.shape == (7, 4)

    def test_more_replicas_than_samples(self):
        dp = DataParallel(make_model(), num_replicas=8)
        assert dp(Tensor(X[:3])).shape == (3, 4)

    def test_single_replica_short_circuits(self):
        dp = DataParallel(make_model(), num_replicas=1)
        assert dp(Tensor(X)).shape == (12, 4)

    def test_replica_exception_propagates(self):
        class Broken(nn.Module):
            def __init__(self):
                super().__init__()
                self.lin = nn.Linear(6, 2)

            def forward(self, x):
                raise RuntimeError("replica exploded")

        dp = DataParallel(Broken(), num_replicas=2)
        with pytest.raises(RuntimeError, match="replica exploded"):
            dp(Tensor(X))

    def test_invalid_replica_count(self):
        with pytest.raises(ValueError):
            DataParallel(make_model(), num_replicas=0)


class TestGradientEquivalence:
    def test_training_matches_plain_full_batch(self):
        """DP's scattered forward + single backward equals local
        full-batch training exactly — the §2.2 mathematical baseline."""
        loss_fn = nn.CrossEntropyLoss()

        reference = make_model()
        opt = SGD(reference.parameters(), lr=0.1)
        for _ in range(4):
            opt.zero_grad()
            loss_fn(reference(Tensor(X)), Y).backward()
            opt.step()
        expected = reference.state_dict()

        model = make_model()
        dp = DataParallel(model, num_replicas=3)
        opt = SGD(dp.parameters(), lr=0.1)
        for _ in range(4):
            opt.zero_grad()
            loss_fn(dp(Tensor(X)), Y).backward()
            opt.step()

        for name, value in dp.state_dict().items():
            assert np.allclose(value, expected[name], atol=1e-12)

    def test_gradients_accumulate_across_replica_branches(self):
        model = make_model()
        dp = DataParallel(model, num_replicas=2)
        out = dp(Tensor(X))
        nn.CrossEntropyLoss()(out, Y).backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_state_dict_passthrough(self):
        model = make_model()
        dp = DataParallel(model)
        state = dp.state_dict()
        dp.load_state_dict(state)
        assert set(state) == set(model.state_dict())
