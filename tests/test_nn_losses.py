"""Loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, ops, randn
from repro.utils import manual_seed


@pytest.fixture(autouse=True)
def seed():
    manual_seed(3)


class TestMSE:
    def test_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = Tensor(np.array([1.0, 1.0, 1.0]))
        assert np.isclose(nn.MSELoss()(pred, target).item(), (0 + 1 + 4) / 3)

    def test_reductions(self):
        pred, target = Tensor(np.array([2.0, 4.0])), Tensor(np.zeros(2))
        assert np.isclose(nn.MSELoss("sum")(pred, target).item(), 20.0)
        assert nn.MSELoss("none")(pred, target).shape == (2,)
        with pytest.raises(ValueError):
            nn.MSELoss("bogus")(pred, target)

    def test_gradient(self):
        pred = randn(4, requires_grad=True)
        target = randn(4)
        nn.MSELoss()(pred, target).backward()
        expected = 2 * (pred.data - target.data) / 4
        assert np.allclose(pred.grad.data, expected)


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = randn(5, 3)
        targets = np.array([0, 2, 1, 1, 0])
        loss = nn.CrossEntropyLoss()(logits, targets).item()
        log_probs = ops.log_softmax(logits).data
        manual = -log_probs[np.arange(5), targets].mean()
        assert np.isclose(loss, manual)

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = nn.CrossEntropyLoss()(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_uniform_logits_log_c(self):
        logits = Tensor(np.zeros((4, 7)))
        loss = nn.CrossEntropyLoss()(logits, np.zeros(4))
        assert np.isclose(loss.item(), np.log(7))

    def test_gradient_sums_to_zero_per_row(self):
        logits = randn(3, 5, requires_grad=True)
        nn.CrossEntropyLoss()(logits, np.array([1, 2, 3])).backward()
        assert np.abs(logits.grad.data.sum(axis=1)).max() < 1e-10

    def test_accepts_tensor_targets(self):
        logits = randn(2, 3)
        loss = nn.CrossEntropyLoss()(logits, Tensor(np.array([0.0, 1.0])))
        assert np.isfinite(loss.item())

    def test_sum_reduction(self):
        logits = randn(4, 3)
        targets = np.array([0, 1, 2, 0])
        mean = nn.CrossEntropyLoss("mean")(logits, targets).item()
        total = nn.CrossEntropyLoss("sum")(logits, targets).item()
        assert np.isclose(total, mean * 4)


class TestNLL:
    def test_equals_cross_entropy_via_log_softmax(self):
        logits = randn(6, 4)
        targets = np.array([0, 1, 2, 3, 0, 1])
        ce = nn.CrossEntropyLoss()(logits, targets).item()
        nll = nn.NLLLoss()(ops.log_softmax(logits), targets).item()
        assert np.isclose(ce, nll)
