"""Layer forward/backward behavior."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, randn
from repro.utils import fork_rng, manual_seed

from conftest import numeric_gradient


@pytest.fixture(autouse=True)
def seed():
    manual_seed(11)


class TestLinear:
    def test_shapes(self):
        layer = nn.Linear(5, 3)
        assert layer(randn(7, 5)).shape == (7, 3)

    def test_matches_manual(self):
        layer = nn.Linear(4, 2)
        x = randn(3, 4)
        expected = x.data @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x).data, expected)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1
        assert layer(randn(3, 4)).shape == (3, 2)

    def test_gradients_numeric(self):
        layer = nn.Linear(3, 2)
        x = randn(4, 3)

        def loss_value():
            return float(((layer(x)) ** 2).mean().item())

        (layer(x) ** 2).mean().backward()
        numeric = numeric_gradient(loss_value, layer.weight.data)
        assert np.abs(layer.weight.grad.data - numeric).max() < 1e-6

    def test_3d_input(self):
        layer = nn.Linear(4, 2)
        assert layer(randn(2, 5, 4)).shape == (2, 5, 2)

    def test_init_scale_reasonable(self):
        layer = nn.Linear(100, 100)
        bound = 1.0 / np.sqrt(100)
        assert np.abs(layer.weight.data).max() <= bound + 1e-9


class TestConvLayers:
    def test_conv_shape(self):
        conv = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)
        assert conv(randn(2, 3, 8, 8)).shape == (2, 8, 4, 4)

    def test_conv_bias_broadcast(self):
        conv = nn.Conv2d(1, 2, kernel_size=1)
        conv.weight.data[...] = 0.0
        conv.bias.data[...] = np.array([1.0, 2.0])
        out = conv(randn(1, 1, 3, 3))
        assert np.allclose(out.data[0, 0], 1.0)
        assert np.allclose(out.data[0, 1], 2.0)

    def test_conv_no_bias(self):
        conv = nn.Conv2d(1, 2, 3, bias=False)
        assert conv.bias is None

    def test_pooling_modules(self):
        x = randn(1, 2, 8, 8)
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(4)(x).shape == (1, 2, 2, 2)
        assert nn.MaxPool2d(2, stride=1)(x).shape == (1, 2, 7, 7)

    def test_flatten(self):
        assert nn.Flatten()(randn(3, 2, 4, 4)).shape == (3, 32)


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = nn.BatchNorm1d(4)
        x = randn(64, 4) * 5.0 + 3.0
        out = bn(x)
        assert np.abs(out.data.mean(axis=0)).max() < 1e-6
        assert np.abs(out.data.std(axis=0) - 1.0).max() < 1e-2

    def test_running_stats_update(self):
        bn = nn.BatchNorm1d(2)
        x = randn(32, 2) + 10.0
        bn(x)
        assert np.all(bn.running_mean.data > 0.5)
        assert bn.num_batches_tracked.data[0] == 1

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        for _ in range(50):
            bn(randn(64, 2) * 2.0 + 5.0)
        bn.eval()
        x = randn(8, 2) * 2.0 + 5.0
        out = bn(x)
        # roughly standardized using the learned running stats
        assert np.abs(out.data.mean()) < 0.5

    def test_batchnorm2d(self):
        bn = nn.BatchNorm2d(3)
        out = bn(randn(4, 3, 5, 5) * 2.0 + 1.0)
        assert out.shape == (4, 3, 5, 5)
        assert np.abs(out.data.mean(axis=(0, 2, 3))).max() < 1e-6

    def test_batchnorm1d_3d_input(self):
        bn = nn.BatchNorm1d(3)
        out = bn(randn(4, 3, 7))
        assert out.shape == (4, 3, 7)
        assert np.abs(out.data.mean(axis=(0, 2))).max() < 1e-6

    def test_gradient_flows(self):
        bn = nn.BatchNorm1d(3)
        (bn(randn(8, 3)) ** 2).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None


class TestLayerNorm:
    def test_normalizes_last_dim(self):
        ln = nn.LayerNorm(6)
        out = ln(randn(4, 6) * 3.0 + 2.0)
        assert np.abs(out.data.mean(axis=-1)).max() < 1e-6

    def test_affine_params(self):
        ln = nn.LayerNorm(4)
        ln.weight.data[...] = 2.0
        ln.bias.data[...] = 1.0
        out = ln(randn(3, 4))
        assert np.abs(out.data.mean(axis=-1) - 1.0).max() < 1e-6

    def test_works_on_3d(self):
        assert nn.LayerNorm(8)(randn(2, 5, 8)).shape == (2, 5, 8)


class TestEmbeddingDropout:
    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], emb.weight.data[1])

    def test_embedding_repeated_index_grad_accumulates(self):
        emb = nn.Embedding(5, 3)
        out = emb(np.array([2, 2, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad.data[2], 3.0)
        assert np.allclose(emb.weight.grad.data[0], 0.0)

    def test_dropout_train_vs_eval(self):
        drop = nn.Dropout(0.5)
        x = Tensor(np.ones((100, 100)))
        with fork_rng(0):
            out = drop(x)
        assert (out.data == 0).mean() > 0.3
        drop.eval()
        assert np.array_equal(drop(x).data, x.data)

    def test_dropout_scales_kept_values(self):
        drop = nn.Dropout(0.5)
        with fork_rng(0):
            out = drop(Tensor(np.ones(10_000)))
        kept = out.data[out.data != 0]
        assert np.allclose(kept, 2.0)

    def test_dropout_p_zero_is_identity(self):
        x = randn(5, 5)
        assert np.array_equal(nn.Dropout(0.0)(x).data, x.data)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestActivationModules:
    def test_all_shapes_preserved(self):
        x = randn(3, 4)
        for layer in (nn.ReLU(), nn.Tanh(), nn.Sigmoid(), nn.GELU()):
            assert layer(x).shape == (3, 4)

    def test_relu_clamps(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0.0, 2.0])
