"""Bucket assignment rules (paper §3.2.2-3.2.3)."""

import numpy as np
import pytest

from repro import nn
from repro.core.bucket import (
    compute_bucket_assignment,
    describe_assignment,
    validate_assignment,
)
from repro.nn.module import Parameter
from repro.utils import manual_seed
from repro.utils.units import MB


def params_of_sizes(*sizes, device="cpu"):
    return [Parameter(np.zeros(s), device=device) for s in sizes]


class TestReverseOrder:
    def test_first_bucket_holds_last_parameters(self):
        params = params_of_sizes(10, 10, 10, 10)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=2 * 10 * 8)
        assert buckets[0].param_indices == (3, 2)
        assert buckets[1].param_indices == (1, 0)

    def test_single_bucket_when_cap_large(self):
        params = params_of_sizes(5, 5, 5)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        assert len(buckets) == 1
        assert buckets[0].param_indices == (2, 1, 0)

    def test_model_parameter_order_respected(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 4), nn.Linear(4, 4), nn.Linear(4, 4))
        params = list(model.parameters())
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=10**9)
        # reverse order: last layer's bias first
        assert buckets[0].param_indices[0] == len(params) - 1
        assert buckets[0].param_indices[-1] == 0


class TestCap:
    def test_zero_cap_gives_per_parameter_buckets(self):
        params = params_of_sizes(3, 7, 1)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=0)
        assert len(buckets) == 3
        assert all(len(b.param_indices) == 1 for b in buckets)

    def test_oversized_parameter_gets_own_bucket(self):
        params = params_of_sizes(1000, 2, 2)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=10 * 8)
        sizes = [b.total_elements for b in buckets]
        assert 1000 in sizes

    def test_cap_not_exceeded_except_single_param(self):
        rng = np.random.default_rng(0)
        params = params_of_sizes(*rng.integers(1, 50, 30).tolist())
        cap = 40 * 8
        for bucket in compute_bucket_assignment(params, bucket_cap_bytes=cap):
            if len(bucket.param_indices) > 1:
                assert bucket.total_elements * 8 <= cap

    def test_first_bucket_cap_smaller(self):
        params = params_of_sizes(10, 10, 10, 10)
        buckets = compute_bucket_assignment(
            params, bucket_cap_bytes=4 * 10 * 8, first_bucket_cap_bytes=10 * 8
        )
        assert len(buckets[0].param_indices) == 1
        assert len(buckets[1].param_indices) == 3


class TestAffinity:
    def test_device_change_closes_bucket(self):
        params = params_of_sizes(4, 4) + params_of_sizes(4, 4, device="gpu:0")
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        assert len(buckets) == 2
        assert buckets[0].device == "gpu:0"
        assert buckets[1].device == "cpu"

    def test_dtype_change_closes_bucket(self):
        a = Parameter(np.zeros(4))
        b = Parameter(np.zeros(4, dtype=np.float64))
        c = Parameter(np.zeros(4).astype(np.float32), requires_grad=False)
        c.requires_grad = True
        params = [a, b, c]
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        assert len(buckets) == 2

    def test_interleaved_devices(self):
        params = (
            params_of_sizes(2)
            + params_of_sizes(2, device="gpu:0")
            + params_of_sizes(2)
        )
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        assert len(buckets) == 3


class TestLayout:
    def test_offsets_are_contiguous(self):
        params = params_of_sizes(3, 5, 7)
        (bucket,) = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        assert bucket.offsets == (0, 7, 12)  # reverse order: sizes 7,5,3
        assert bucket.sizes == (7, 5, 3)
        assert bucket.total_elements == 15

    def test_offset_of(self):
        params = params_of_sizes(3, 5)
        (bucket,) = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        assert bucket.offset_of(1) == 0
        assert bucket.offset_of(0) == 5

    def test_total_bytes(self):
        params = params_of_sizes(10)
        (bucket,) = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        assert bucket.total_bytes(8) == 80

    def test_deterministic_across_calls(self):
        params = params_of_sizes(*range(1, 20))
        a = compute_bucket_assignment(params, bucket_cap_bytes=100 * 8)
        b = compute_bucket_assignment(params, bucket_cap_bytes=100 * 8)
        assert [x.param_indices for x in a] == [y.param_indices for y in b]


class TestValidation:
    def test_valid_assignment_passes(self):
        params = params_of_sizes(2, 4, 6)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        validate_assignment(buckets, 3)

    def test_missing_parameter_detected(self):
        params = params_of_sizes(2, 4, 6)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        with pytest.raises(ValueError, match="never bucketed"):
            validate_assignment(buckets, 4)

    def test_duplicate_parameter_detected(self):
        params = params_of_sizes(2, 2)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        with pytest.raises(ValueError, match="assigned to buckets"):
            validate_assignment(list(buckets) * 2, 2)

    def test_describe_renders_table(self):
        params = params_of_sizes(2, 4)
        buckets = compute_bucket_assignment(params, bucket_cap_bytes=MB)
        text = describe_assignment(buckets)
        assert "bucket" in text and "cpu" in text
