"""The perf-regression gate: flattening, judging, blessing.

The committed baselines must pass against themselves (ratio 1.0), a
doctored 2x slowdown must fail, and the flattening must line up sweep
rows by configuration rather than position.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
import perfguard  # noqa: E402

BASELINES = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "baselines"
)
HOTPATH_BASELINE = os.path.join(BASELINES, "hotpath.json")
MICRO_BASELINE = os.path.join(BASELINES, "collectives_micro.json")


class TestFlatten:
    def test_rows_keyed_by_identifying_fields(self):
        document = {
            "bench": "demo",
            "created_unix": 1.0,
            "allreduce": [
                {"world": 2, "size_mb": 1, "ring_s": 0.5, "seed_ring_s": 1.0},
                {"world": 4, "size_mb": 1, "ring_s": 0.7, "seed_ring_s": 2.0},
            ],
        }
        flat = perfguard.flatten(document)
        assert flat["allreduce[world=2,size_mb=1].ring_s"] == 0.5
        assert flat["allreduce[world=4,size_mb=1].seed_ring_s"] == 2.0
        assert "created_unix" not in flat  # envelope stripped

    def test_row_order_does_not_matter(self):
        rows = [{"world": 2, "ring_s": 0.5}, {"world": 4, "ring_s": 0.9}]
        assert perfguard.flatten({"sweep": rows}) == perfguard.flatten(
            {"sweep": list(reversed(rows))}
        )

    def test_booleans_are_not_metrics(self):
        flat = perfguard.flatten({"checks": {"ok": True, "ratio_s": 1.5}})
        assert "checks.ok" not in flat
        assert flat["checks.ratio_s"] == 1.5


class TestDirection:
    @pytest.mark.parametrize("metric,expected", [
        ("allreduce[world=2].ring_s", "lower"),
        ("ddp[mode=view].iter_ms", "lower"),
        ("median_seconds.ring", "lower"),
        ("per_bucket_allreduce_latency", "lower"),
        ("allreduce[world=2].ring_speedup_vs_seed", "higher"),
        ("checks.zero_copy_hits", None),
        ("sampler_overhead.overhead_pct", None),
    ])
    def test_classification(self, metric, expected):
        assert perfguard.direction(metric) == expected


class TestGate:
    def test_committed_baselines_pass_against_themselves(self, capsys):
        assert perfguard.main([HOTPATH_BASELINE, MICRO_BASELINE]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "REGRESSION" not in out

    def test_synthetic_2x_slowdown_fails(self, tmp_path, capsys):
        document = json.load(open(HOTPATH_BASELINE))
        for row in document["allreduce"]:
            row["ring_s"] *= 2.0
        doctored = tmp_path / "BENCH_hotpath.json"
        doctored.write_text(json.dumps(document))
        assert perfguard.main([str(doctored)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "ring_s" in out

    def test_speedup_collapse_fails(self, tmp_path):
        document = json.load(open(HOTPATH_BASELINE))
        for row in document["allreduce"]:
            row["ring_speedup_vs_seed"] /= 4.0
        doctored = tmp_path / "BENCH_hotpath.json"
        doctored.write_text(json.dumps(document))
        assert perfguard.main([str(doctored)]) == 1

    def test_generous_threshold_tolerates_the_2x(self, tmp_path):
        document = json.load(open(HOTPATH_BASELINE))
        for row in document["allreduce"]:
            row["ring_s"] *= 2.0
        doctored = tmp_path / "BENCH_hotpath.json"
        doctored.write_text(json.dumps(document))
        assert perfguard.main(["--threshold", "4.0", str(doctored)]) == 0

    def test_per_metric_override(self, tmp_path):
        document = json.load(open(HOTPATH_BASELINE))
        for row in document["chunk_sweep"]:
            row["ring_s"] *= 3.0
        doctored = tmp_path / "BENCH_hotpath.json"
        doctored.write_text(json.dumps(document))
        assert perfguard.main([str(doctored)]) == 1
        assert perfguard.main(
            ["--per-metric", "chunk_sweep=8.0", str(doctored)]) == 0

    def test_noise_floor_skips_tiny_baselines(self, tmp_path):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        (baseline_dir / "tiny.json").write_text(json.dumps(
            {"bench": "tiny", "op_s": 1e-5}))
        current = tmp_path / "BENCH_tiny.json"
        current.write_text(json.dumps({"bench": "tiny", "op_s": 1e-3}))
        # 100x "regression" on a 10 µs metric is scheduler noise.
        assert perfguard.main(
            ["--baseline-dir", str(baseline_dir), str(current)]) == 0

    def test_missing_baseline_is_an_error(self, tmp_path):
        current = tmp_path / "BENCH_unknown.json"
        current.write_text(json.dumps({"bench": "unknown", "x_s": 1.0}))
        assert perfguard.main(
            ["--baseline-dir", str(tmp_path / "none"), str(current)]) == 2

    def test_bless_adopts_current_as_baseline(self, tmp_path):
        baseline_dir = tmp_path / "baselines"
        current = tmp_path / "BENCH_fresh.json"
        current.write_text(json.dumps({"bench": "fresh", "op_s": 2.5}))
        assert perfguard.main(
            ["--bless", "--baseline-dir", str(baseline_dir), str(current)]) == 0
        blessed = json.load(open(baseline_dir / "fresh.json"))
        assert blessed["op_s"] == 2.5
        # And the blessed baseline now gates.
        assert perfguard.main(
            ["--baseline-dir", str(baseline_dir), str(current)]) == 0
