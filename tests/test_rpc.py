"""The RPC framework (paper §2.2's third distributed tool)."""

import threading

import numpy as np
import pytest

from repro.comm.transport import TransportHub
from repro.rpc import RpcAgent, RpcError


def run_agents(world, fn, timeout=15.0, setup=None):
    """Run ``fn(agent, rank)`` on every rank with live agents.

    ``setup(agent, rank)`` runs for every agent *before* any body
    starts, so registrations are visible to all callers (in real
    deployments the rendezvous barrier provides this ordering).
    """
    hub = TransportHub(world, default_timeout=timeout)
    agents = [RpcAgent(hub, rank, timeout=timeout) for rank in range(world)]
    if setup is not None:
        for rank, agent in enumerate(agents):
            setup(agent, rank)
    results = [None] * world
    errors = []
    barrier = threading.Barrier(world)

    def body(rank):
        try:
            results[rank] = fn(agents[rank], rank)
        except Exception as exc:  # noqa: BLE001
            errors.append((rank, exc))
        finally:
            try:
                barrier.wait(timeout)
            except Exception:  # noqa: BLE001
                pass

    threads = [threading.Thread(target=body, args=(r,)) for r in range(world)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout * 2)
    for agent in agents:
        agent.shutdown()
    assert not errors, errors
    return results


class TestBasicCalls:
    def test_sync_call(self):
        def setup(agent, rank):
            agent.register("add", lambda a, b: a + b)

        def body(agent, rank):
            if rank == 0:
                return agent.rpc_sync(1, "add", 2, 3)
            return None

        assert run_agents(2, body, setup=setup)[0] == 5

    def test_async_call_future(self):
        def setup(agent, rank):
            agent.register("square", lambda x: x * x)

        def body(agent, rank):
            if rank == 0:
                future = agent.rpc_async(1, "square", 7)
                return future.wait(5)
            return None

        assert run_agents(2, body, setup=setup)[0] == 49

    def test_kwargs(self):
        def setup(agent, rank):
            agent.register("fmt", lambda x, suffix="!": f"{x}{suffix}")

        def body(agent, rank):
            if rank == 1:
                return agent.rpc_sync(0, "fmt", "hi", suffix="?")
            return None

        assert run_agents(2, body, setup=setup)[1] == "hi?"

    def test_local_short_circuit(self):
        def body(agent, rank):
            agent.register("double", lambda x: 2 * x)
            return agent.rpc_sync(rank, "double", 21)

        assert run_agents(2, body) == [42, 42]

    def test_numpy_payloads(self):
        def setup(agent, rank):
            agent.register("sum_rows", lambda arr: arr.sum(axis=0))

        def body(agent, rank):
            if rank == 0:
                out = agent.rpc_sync(1, "sum_rows", np.ones((3, 4)))
                return out.tolist()
            return None

        assert run_agents(2, body, setup=setup)[0] == [3.0, 3.0, 3.0, 3.0]

    def test_many_concurrent_futures(self):
        def setup(agent, rank):
            agent.register("inc", lambda x: x + 1)

        def body(agent, rank):
            if rank == 0:
                futures = [agent.rpc_async(1, "inc", i) for i in range(20)]
                return [f.wait(5) for f in futures]
            return None

        assert run_agents(2, body, setup=setup)[0] == list(range(1, 21))


class TestErrors:
    def test_remote_exception_propagates(self):
        def setup(agent, rank):
            def boom():
                raise ValueError("remote kaboom")

            agent.register("boom", boom)

        def body(agent, rank):
            if rank == 0:
                with pytest.raises(RpcError, match="remote kaboom"):
                    agent.rpc_sync(1, "boom")
                return True
            return None

        assert run_agents(2, body, setup=setup)[0] is True

    def test_unknown_function(self):
        def body(agent, rank):
            if rank == 0:
                with pytest.raises(RpcError, match="no rpc function"):
                    agent.rpc_sync(1, "missing")
                return True
            return None

        assert run_agents(2, body)[0] is True


class TestRRef:
    class Counter:
        def __init__(self, start=0):
            self.value = start

        def increment(self, by=1):
            self.value += by
            return self.value

        def get(self):
            return self.value

    def test_remote_object_lifecycle(self):
        def setup(agent, rank):
            agent.register("make_counter", TestRRef.Counter)

        def body(agent, rank):
            if rank == 0:
                counter = agent.remote(1, "make_counter", 10)
                counter.rpc_sync("increment")
                counter.rpc_sync("increment", 5)
                return counter.rpc_sync("get")
            return None

        assert run_agents(2, body, setup=setup)[0] == 16

    def test_rref_state_lives_on_owner(self):
        """Two callers share the same remote object — the parameter
        server pattern the paper cites (§2.2)."""

        # simplified: single caller verifies persistence across calls
        def setup(agent, rank):
            agent.register("make_counter", TestRRef.Counter)

        def body2(agent, rank):
            if rank == 0:
                counter = agent.remote(1, "make_counter", 0)
                for _ in range(3):
                    counter.rpc_sync("increment")
                copy = counter.to_here()
                return copy.value

        assert run_agents(2, body2, setup=setup)[0] == 3

    def test_rref_async(self):
        def setup(agent, rank):
            agent.register("make_counter", TestRRef.Counter)

        def body(agent, rank):
            if rank == 0:
                counter = agent.remote(1, "make_counter", 0)
                futures = [counter.rpc_async("increment") for _ in range(5)]
                [f.wait(5) for f in futures]
                return counter.rpc_sync("get")
            return None

        assert run_agents(2, body, setup=setup)[0] == 5


class TestRpcParameterServer:
    """An end-to-end RPC parameter server, the §2.2 use case."""

    class ParamStore:
        def __init__(self, values):
            self.values = np.asarray(values, dtype=np.float64)

        def apply_gradient(self, grad, lr):
            self.values -= lr * np.asarray(grad)
            return self.values.copy()

        def get(self):
            return self.values.copy()

    def test_workers_train_through_rpc(self):
        target = np.array([1.0, -2.0, 3.0])

        def setup(agent, rank):
            agent.register(
                "make_store", lambda: TestRpcParameterServer.ParamStore(np.zeros(3))
            )

        def body(agent, rank):
            if rank == 0:
                store = agent.remote(2, "make_store")
                params = store.rpc_sync("get")
                for _ in range(50):
                    grad = 2 * (params - target)  # d/dp ||p - t||^2
                    params = store.rpc_sync("apply_gradient", grad, 0.1)
                return params.tolist()
            return None

        final = run_agents(3, body, setup=setup)[0]
        assert np.allclose(final, target, atol=1e-3)
