"""Module system: registration order, state, buffers, modes."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, randn
from repro.utils import manual_seed


def make_net():
    manual_seed(0)
    return nn.Sequential(
        nn.Linear(4, 8), nn.BatchNorm1d(8), nn.ReLU(), nn.Linear(8, 2)
    )


class TestRegistrationOrder:
    def test_parameters_follow_definition_order(self):
        net = make_net()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["0.weight", "0.bias", "1.weight", "1.bias", "3.weight", "3.bias"]

    def test_order_is_deterministic_across_instances(self):
        names1 = [n for n, _ in make_net().named_parameters()]
        names2 = [n for n, _ in make_net().named_parameters()]
        assert names1 == names2

    def test_nested_modules(self):
        class Outer(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = nn.Linear(2, 2)
                self.own = nn.Parameter(np.zeros(3))

            def forward(self, x):
                return self.inner(x) + self.own

        outer = Outer()
        names = [n for n, _ in outer.named_parameters()]
        assert names == ["inner.weight", "inner.bias", "own"]

    def test_reassigning_module_attribute(self):
        net = make_net()
        net.add_module("0", nn.Linear(4, 8))
        assert len(list(net.parameters())) == 6

    def test_parameter_identity_preserved(self):
        net = make_net()
        params1 = list(net.parameters())
        params2 = list(net.parameters())
        assert all(a is b for a, b in zip(params1, params2))


class TestBuffers:
    def test_batchnorm_registers_buffers(self):
        names = [n for n, _ in make_net().named_buffers()]
        assert names == ["1.running_mean", "1.running_var", "1.num_batches_tracked"]

    def test_buffers_not_in_parameters(self):
        net = make_net()
        param_names = {n for n, _ in net.named_parameters()}
        assert not any("running" in n for n in param_names)

    def test_buffer_reassignment_stays_buffer(self):
        bn = nn.BatchNorm1d(4)
        bn.running_mean = Tensor(np.ones(4))
        assert "running_mean" in dict(bn.named_buffers())
        assert np.allclose(bn.running_mean.data, 1.0)

    def test_register_buffer_accessible_as_attribute(self):
        mod = nn.Module()
        mod.register_buffer("stat", Tensor(np.zeros(2)))
        assert mod.stat.shape == (2,)


class TestStateDict:
    def test_roundtrip(self):
        net = make_net()
        state = net.state_dict()
        other = make_net()
        for p in other.parameters():
            p.data[...] = 0.0
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        net = make_net()
        state = net.state_dict()
        state["0.weight"][...] = 99.0
        assert not np.any(next(net.parameters()).data == 99.0)

    def test_includes_buffers(self):
        assert "1.running_mean" in make_net().state_dict()

    def test_mismatch_raises(self):
        net = make_net()
        state = net.state_dict()
        del state["0.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)
        state["0.weight"] = np.zeros((8, 4))
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)


class TestModes:
    def test_train_eval_recursive(self):
        net = make_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = make_net()
        out = net(randn(4, 4))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_to_device_tags_everything(self):
        net = make_net().to("gpu:3")
        assert all(p.device == "gpu:3" for p in net.parameters())
        assert all(b.device == "gpu:3" for b in net.buffers())

    def test_num_parameters(self):
        net = make_net()
        expected = 4 * 8 + 8 + 8 + 8 + 8 * 2 + 2
        assert net.num_parameters() == expected

    def test_missing_attribute_raises(self):
        with pytest.raises(AttributeError):
            make_net().nonexistent_thing


class TestContainers:
    def test_sequential_iteration_and_indexing(self):
        net = make_net()
        assert len(net) == 4
        assert isinstance(net[0], nn.Linear)
        assert len(list(iter(net))) == 4

    def test_modulelist(self):
        ml = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        ml.append(nn.Linear(2, 2))
        assert len(ml) == 4
        assert len(list(ml.parameters())) == 8

    def test_repr_contains_children(self):
        assert "Linear" in repr(make_net())
