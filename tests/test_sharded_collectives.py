"""The flat sharding collectives: reduce_scatter_flat / all_gather_into_flat.

Mirrors ``tests/test_hotpath.py``'s chunked-collective coverage for the
two primitives the ZeRO stages ride on:

* worlds 1–5 with odd (non-divisible) element counts, including sizes
  smaller than the world (empty spans on some ranks);
* chunked pipelining — results invariant to chunk size, message counts
  scale with the chunk count;
* the span convention: rank ``r`` owns ``partition_spans`` span ``r``,
  so reduce-scatter → all-gather round-trips to the allreduce result;
* the ``ProcessGroup`` exposure, sync and async, on single- and
  multi-stream groups.
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.comm import algorithms as alg
from repro.comm import get_context

from conftest import run_world
from test_hotpath import _run_ranks

WORLDS_1_TO_5 = [1, 2, 3, 4, 5]
ODD_SIZES = [1, 3, 17, 97]


def _inputs(world, size, seed):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(size) for _ in range(world)]


class TestReduceScatterFlat:
    @pytest.mark.parametrize("world", WORLDS_1_TO_5)
    @pytest.mark.parametrize("size", ODD_SIZES)
    def test_returns_owned_span_of_the_sum(self, world, size):
        inputs = _inputs(world, size, world * 1000 + size)
        expected = np.sum(inputs, axis=0)
        spans = alg.partition_spans(size, world)

        def body(hub, ranks, me):
            return alg.reduce_scatter_flat(
                hub, ranks, me, inputs[me].copy(), "sum", "rs", 15.0, 40
            )

        for me, out in enumerate(_run_ranks(world, body)):
            lo, hi = spans[me]
            assert out.shape == (hi - lo,)
            np.testing.assert_allclose(out, expected[lo:hi], rtol=1e-9)

    @pytest.mark.parametrize("op", ["max", "min", "prod"])
    def test_non_sum_ops(self, op):
        world, size = 3, 17
        inputs = _inputs(world, size, 7)
        reduced = {
            "max": np.max(inputs, axis=0),
            "min": np.min(inputs, axis=0),
            "prod": np.prod(inputs, axis=0),
        }[op]
        spans = alg.partition_spans(size, world)

        def body(hub, ranks, me):
            return alg.reduce_scatter_flat(
                hub, ranks, me, inputs[me].copy(), op, "rs", 15.0
            )

        for me, out in enumerate(_run_ranks(world, body)):
            lo, hi = spans[me]
            np.testing.assert_allclose(out, reduced[lo:hi], rtol=1e-9)

    @pytest.mark.parametrize("chunk_bytes", [8, 24, 100, 10**9])
    def test_chunk_size_never_changes_result(self, chunk_bytes):
        world, size = 4, 53
        inputs = _inputs(world, size, chunk_bytes % 997)
        expected = np.sum(inputs, axis=0)
        spans = alg.partition_spans(size, world)

        def body(hub, ranks, me):
            return alg.reduce_scatter_flat(
                hub, ranks, me, inputs[me].copy(), "sum", "rs", 15.0, chunk_bytes
            )

        for me, out in enumerate(_run_ranks(world, body)):
            lo, hi = spans[me]
            np.testing.assert_allclose(out, expected[lo:hi], rtol=1e-9)

    def test_does_not_mutate_the_input(self):
        world = 3
        inputs = _inputs(world, 17, 3)

        def body(hub, ranks, me):
            buf = inputs[me].copy()
            alg.reduce_scatter_flat(hub, ranks, me, buf, "sum", "rs", 15.0)
            return np.array_equal(buf, inputs[me])

        assert all(_run_ranks(world, body))

    def test_chunking_multiplies_message_count(self):
        """25 fp64 elements, world 5 → 5-element spans; 16-byte chunks
        (2 elements) → 3 chunks per span → 3·(p−1) sends per rank, the
        reduce-scatter half of the ring allreduce's message count."""
        world = 5
        counts = {}

        def body(hub, ranks, me):
            alg.reduce_scatter_flat(hub, ranks, me, np.ones(25), "sum", "rs", 15.0, 16)
            counts[me] = hub.messages_sent[me]

        _run_ranks(world, body)
        assert all(count == 3 * (world - 1) for count in counts.values())

    def test_size_smaller_than_world_gives_empty_spans(self):
        world, size = 5, 3
        inputs = _inputs(world, size, 11)
        expected = np.sum(inputs, axis=0)

        def body(hub, ranks, me):
            return alg.reduce_scatter_flat(
                hub, ranks, me, inputs[me].copy(), "sum", "rs", 15.0
            )

        outs = _run_ranks(world, body)
        for me, (lo, hi) in enumerate(alg.partition_spans(size, world)):
            assert outs[me].shape == (hi - lo,)
            np.testing.assert_allclose(outs[me], expected[lo:hi], rtol=1e-9)
        assert sum(o.size for o in outs) == size


class TestAllGatherIntoFlat:
    @pytest.mark.parametrize("world", WORLDS_1_TO_5)
    @pytest.mark.parametrize("size", ODD_SIZES)
    def test_every_rank_ends_with_all_spans(self, world, size):
        rng = np.random.default_rng(world * 31 + size)
        reference = rng.standard_normal(size)
        spans = alg.partition_spans(size, world)

        def body(hub, ranks, me):
            lo, hi = spans[me]
            buf = np.zeros(size)
            buf[lo:hi] = reference[lo:hi]  # only my span is populated
            alg.all_gather_into_flat(hub, ranks, me, buf, None, "ag", 15.0, 40)
            return buf

        for out in _run_ranks(world, body):
            np.testing.assert_allclose(out, reference, rtol=1e-12)

    def test_shard_argument_is_the_contribution(self, world=4, size=53):
        rng = np.random.default_rng(9)
        reference = rng.standard_normal(size)
        spans = alg.partition_spans(size, world)

        def body(hub, ranks, me):
            lo, hi = spans[me]
            buf = np.full(size, np.nan)  # stale garbage everywhere
            alg.all_gather_into_flat(
                hub, ranks, me, buf, reference[lo:hi].copy(), "ag", 15.0
            )
            return buf

        for out in _run_ranks(world, body):
            np.testing.assert_allclose(out, reference, rtol=1e-12)

    def test_shard_size_mismatch_raises(self):
        def body(hub, ranks, me):
            try:
                alg.all_gather_into_flat(
                    hub, ranks, me, np.zeros(10), np.zeros(9), "ag", 15.0
                )
            except ValueError as exc:
                hub.close()
                return str(exc)
            return None

        results = _run_ranks(2, body)
        assert any(r and "elements" in r for r in results)

    def test_round_trips_with_reduce_scatter(self):
        """reduce_scatter → all_gather(shard=...) == allreduce: the span
        conventions of the two collectives agree."""
        world, size = 4, 29
        inputs = _inputs(world, size, 17)
        expected = np.sum(inputs, axis=0)

        def body(hub, ranks, me):
            span = alg.reduce_scatter_flat(
                hub, ranks, me, inputs[me].copy(), "sum", "rs", 15.0
            )
            full = np.zeros(size)
            alg.all_gather_into_flat(hub, ranks, me, full, span, "ag", 15.0)
            return full

        for out in _run_ranks(world, body):
            np.testing.assert_allclose(out, expected, rtol=1e-9)


class TestProcessGroupExposure:
    def test_sync_reduce_scatter_flat(self):
        def body(rank):
            pg = get_context().default_group
            t = Tensor(np.full(10, float(rank + 1)))
            span = pg.reduce_scatter_flat(t)
            lo, hi = alg.partition_spans(10, 2)[rank]
            np.testing.assert_allclose(span, np.full(hi - lo, 3.0))
            return True

        assert all(run_world(2, body, backend="gloo"))

    def test_async_pipeline_multi_stream(self):
        """Several in-flight flat collectives on a two-stream group stay
        correct and ordered per stream."""

        def body(rank):
            pg = get_context().default_group
            assert pg.num_streams == 2
            tensors = [Tensor(np.full(12, float(rank + 1 + i))) for i in range(8)]
            works = [pg.reduce_scatter_flat(t, async_op=True) for t in tensors]
            spans = []
            for w in works:
                w.wait()
                spans.append(w.result[0])
            lo, hi = alg.partition_spans(12, 3)[rank]
            for i, span in enumerate(spans):
                expected = sum(float(r + 1 + i) for r in range(3))
                np.testing.assert_allclose(span, np.full(hi - lo, expected))
            return True

        assert all(run_world(3, body, backend="gloo", num_streams=2))

    def test_all_gather_flat_fills_in_place(self):
        def body(rank):
            pg = get_context().default_group
            size = 11
            spans = alg.partition_spans(size, 3)
            lo, hi = spans[rank]
            t = Tensor(np.zeros(size))
            t.data[lo:hi] = rank + 1.0
            pg.all_gather_flat(t)
            expected = np.zeros(size)
            for r, (slo, shi) in enumerate(spans):
                expected[slo:shi] = r + 1.0
            np.testing.assert_allclose(t.data, expected)
            return True

        assert all(run_world(3, body, backend="gloo"))

    def test_collectives_are_instrumented(self):
        """Flight-recorder/telemetry sees the new ops like existing ones:
        bytes accounted, ops named in the group's metrics."""

        def body(rank):
            pg = get_context().default_group
            before = pg.bytes_communicated
            t = Tensor(np.ones(16))
            pg.reduce_scatter_flat(t)
            pg.all_gather_flat(t)
            return pg.bytes_communicated - before

        deltas = run_world(2, body, backend="gloo")
        assert all(delta == 2 * 16 * 8 for delta in deltas)
