"""Rank contexts, init/destroy, and the run_distributed harness."""

import numpy as np
import pytest

from repro.comm import (
    Store,
    TransportHub,
    destroy_process_group,
    get_context,
    get_rank,
    get_world_size,
    init_process_group,
    run_distributed,
)


class TestContextAccess:
    def test_no_context_outside_harness(self):
        with pytest.raises(RuntimeError, match="no distributed context"):
            get_context()

    def test_rank_and_world(self):
        def body(rank):
            return get_rank(), get_world_size()

        assert run_distributed(3, body) == [(0, 3), (1, 3), (2, 3)]

    def test_fn_without_rank_argument(self):
        def body():
            return get_rank()

        assert run_distributed(2, body) == [0, 1]

    def test_context_cleared_after_run(self):
        run_distributed(2, lambda r: r)
        with pytest.raises(RuntimeError):
            get_context()


class TestInitProcessGroup:
    def test_init_requires_args_outside_harness(self):
        with pytest.raises(RuntimeError, match="store=|outside"):
            init_process_group("gloo")

    def test_standalone_init_with_explicit_plumbing(self):
        """init_process_group works outside run_distributed when all
        plumbing is supplied (the torch.distributed-style entry)."""
        import threading

        store = Store(timeout=5)
        hub = TransportHub(2, default_timeout=5)
        results = [None, None]

        def worker(rank):
            pg = init_process_group(
                "gloo", store=store, hub=hub, rank=rank, world_size=2
            )
            x = np.full(2, float(rank + 1))
            pg.allreduce(x)
            results[rank] = x[0]
            destroy_process_group()

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert results == [3.0, 3.0]

    def test_unknown_backend(self):
        def body(rank):
            init_process_group("smpi")

        with pytest.raises(RuntimeError, match="unknown backend"):
            run_distributed(2, body, timeout=3)

    def test_default_group_set(self):
        def body(rank):
            return get_context().default_group.backend

        assert run_distributed(2, body, backend="nccl") == ["nccl", "nccl"]

    def test_destroy_idempotent(self):
        def body(rank):
            destroy_process_group()
            destroy_process_group()
            return True

        assert run_distributed(2, body, backend="gloo") == [True, True]


class TestErrorPropagation:
    def test_exception_reraised_with_rank(self):
        def body(rank):
            if rank == 1:
                raise ValueError("boom on rank 1")
            return rank

        with pytest.raises(RuntimeError, match="rank 1 failed: boom"):
            run_distributed(2, body)

    def test_peer_unblocked_when_one_rank_dies(self):
        """A rank crashing before a collective must not leave peers
        hanging until the timeout: the hub is closed and peers raise."""
        def body(rank):
            pg = get_context().default_group
            if rank == 0:
                raise ValueError("early death")
            pg.allreduce(np.zeros(4))

        with pytest.raises(RuntimeError, match="rank 0 failed: early death"):
            run_distributed(2, body, backend="gloo", timeout=5)

    def test_results_order_matches_ranks(self):
        assert run_distributed(4, lambda r: r * 10) == [0, 10, 20, 30]


class TestWorkHandle:
    def test_wait_timeout(self):
        from repro.comm.process_group import CollectiveTimeoutError, Work

        work = Work("never-completes")
        with pytest.raises(CollectiveTimeoutError):
            work.wait(timeout=0.05)

    def test_error_propagates_through_wait(self):
        from repro.comm.process_group import Work

        work = Work("fails")
        work._complete(ValueError("inner"))
        with pytest.raises(ValueError, match="inner"):
            work.wait()

    def test_repr(self):
        from repro.comm.process_group import Work

        work = Work("x")
        assert "pending" in repr(work)
        work._complete()
        assert "done" in repr(work)
