"""Real trainable models."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, randn
from repro.models import (
    MLP,
    BranchedModel,
    ConvNet,
    StochasticDepthMLP,
    TinyTransformer,
)
from repro.optim import Adam, SGD
from repro.utils import manual_seed


@pytest.fixture(autouse=True)
def seed():
    manual_seed(2)


class TestMLP:
    def test_shapes(self):
        mlp = MLP(10, [32, 16], 3)
        assert mlp(randn(5, 10)).shape == (5, 3)

    def test_batch_norm_variant_has_buffers(self):
        mlp = MLP(4, [8], 2, batch_norm=True)
        assert len(list(mlp.buffers())) == 3

    def test_trains(self):
        mlp = MLP(4, [16], 1)
        x, y = randn(16, 4), randn(16, 1)
        opt = SGD(mlp.parameters(), lr=0.1)
        first = nn.MSELoss()(mlp(x), y).item()
        for _ in range(50):
            opt.zero_grad()
            loss = nn.MSELoss()(mlp(x), y)
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5


class TestConvNet:
    def test_output_shape(self):
        net = ConvNet(num_classes=10, channels=4)
        assert net(randn(2, 1, 28, 28)).shape == (2, 10)

    def test_all_params_get_grads(self):
        net = ConvNet(channels=2)
        out = net(randn(2, 1, 28, 28))
        nn.CrossEntropyLoss()(out, np.array([1, 2])).backward()
        assert all(p.grad is not None for p in net.parameters())

    def test_learns_synthetic_mnist(self):
        from repro.data import DataLoader, synthetic_mnist

        ds = synthetic_mnist(96, noise=0.15, seed=1)
        loader = DataLoader(ds, batch_size=32)
        net = ConvNet(channels=4)
        opt = Adam(net.parameters(), lr=5e-3)
        loss_fn = nn.CrossEntropyLoss()
        losses = []
        for _ in range(4):
            for x, y in loader:
                opt.zero_grad()
                loss = loss_fn(net(x), y)
                loss.backward()
                opt.step()
                losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.8


class TestTinyTransformer:
    def test_output_shape(self):
        model = TinyTransformer(num_classes=5)
        tokens = np.random.default_rng(0).integers(0, 64, (3, 12))
        assert model(tokens).shape == (3, 5)

    def test_gradients_reach_embeddings(self):
        model = TinyTransformer()
        tokens = np.random.default_rng(0).integers(0, 64, (2, 8))
        nn.CrossEntropyLoss()(model(tokens), np.array([0, 1])).backward()
        assert model.token_embedding.weight.grad is not None
        assert model.position_embedding.weight.grad is not None

    def test_attention_is_permutation_sensitive(self):
        """Position embeddings break permutation invariance."""
        model = TinyTransformer()
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 64, (1, 8))
        out1 = model(tokens).data
        out2 = model(tokens[:, ::-1]).data
        assert not np.allclose(out1, out2)

    def test_learns_token_counting_task(self):
        """Classify sequences by their dominant token id bucket."""
        rng = np.random.default_rng(3)
        n, seq = 64, 8
        labels = rng.integers(0, 2, n)
        tokens = np.where(
            rng.random((n, seq)) < 0.8,
            (labels[:, None] * 8 + rng.integers(0, 8, (n, seq))),
            rng.integers(0, 16, (n, seq)),
        )
        model = TinyTransformer(
            vocab_size=16, max_seq_len=seq, hidden=16, num_heads=2,
            num_layers=1, ffn_dim=32, num_classes=2,
        )
        opt = Adam(model.parameters(), lr=1e-2)
        loss_fn = nn.CrossEntropyLoss()
        first = loss_fn(model(tokens), labels).item()
        for _ in range(30):
            opt.zero_grad()
            loss = loss_fn(model(tokens), labels)
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.5

    def test_head_dim_validation(self):
        with pytest.raises(ValueError):
            TinyTransformer(hidden=30, num_heads=4)


class TestDynamicModels:
    def test_branch_selection(self):
        model = BranchedModel(num_branches=3)
        x = randn(2, 8)
        out = model(x, branch=2)
        out.sum().backward()
        assert all(p.grad is not None for p in model.branches[2].parameters())
        assert all(p.grad is None for p in model.branches[0].parameters())
        assert all(p.grad is not None for p in model.trunk.parameters())

    def test_invalid_branch(self):
        with pytest.raises(ValueError):
            BranchedModel()(randn(1, 8), branch=9)

    def test_stochastic_depth_skips_blocks(self):
        model = StochasticDepthMLP(num_blocks=6, drop_prob=0.5)
        manual_seed(0)
        model(randn(2, 16))
        kept_first = list(model.last_kept)
        model(randn(2, 16))
        assert len(kept_first) < 6 or len(model.last_kept) < 6

    def test_stochastic_depth_eval_keeps_all(self):
        model = StochasticDepthMLP(num_blocks=4, drop_prob=0.9)
        model.eval()
        model(randn(2, 16))
        assert model.last_kept == [0, 1, 2, 3]

    def test_skipped_blocks_get_no_grads(self):
        model = StochasticDepthMLP(num_blocks=4, drop_prob=0.5)
        manual_seed(1)
        out = model(randn(2, 16))
        out.sum().backward()
        kept = set(model.last_kept)
        for index, block in enumerate(model.blocks):
            has_grad = all(p.grad is not None for p in block.parameters())
            assert has_grad == (index in kept)
