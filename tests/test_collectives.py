"""Collective algorithms over the transport, all world sizes."""

import threading

import numpy as np
import pytest

from repro.comm import algorithms as alg
from repro.comm.transport import TransportHub

WORLD_SIZES = [1, 2, 3, 4, 5, 7, 8]


def run_ranks(world, fn, timeout=10.0):
    hub = TransportHub(world, default_timeout=timeout)
    results = [None] * world
    errors = []

    def worker(rank):
        try:
            results[rank] = fn(hub, rank)
        except Exception as exc:  # noqa: BLE001
            errors.append((rank, exc))

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(world)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout * 2)
    assert not errors, errors
    return results, hub


@pytest.mark.parametrize("world", WORLD_SIZES)
@pytest.mark.parametrize("algorithm", sorted(alg.ALLREDUCE_ALGORITHMS))
class TestAllReduceSum:
    def test_sum_matches(self, world, algorithm):
        rng = np.random.default_rng(world)
        inputs = [rng.standard_normal(17) for _ in range(world)]
        expected = np.sum(inputs, axis=0)
        fn = alg.ALLREDUCE_ALGORITHMS[algorithm]

        def body(hub, rank):
            buf = inputs[rank].copy()
            fn(hub, list(range(world)), rank, buf, "sum", tag="t")
            return buf

        results, _ = run_ranks(world, body)
        for out in results:
            assert np.allclose(out, expected)


@pytest.mark.parametrize("op,reduce_fn", [
    ("max", np.maximum.reduce),
    ("min", np.minimum.reduce),
    ("prod", lambda arrs: np.prod(arrs, axis=0)),
])
def test_allreduce_other_ops(op, reduce_fn):
    world = 4
    rng = np.random.default_rng(0)
    inputs = [rng.uniform(0.5, 2.0, 9) for _ in range(world)]
    expected = reduce_fn(inputs)

    def body(hub, rank):
        buf = inputs[rank].copy()
        alg.allreduce_ring(hub, list(range(world)), rank, buf, op, tag="t")
        return buf

    results, _ = run_ranks(world, body)
    for out in results:
        assert np.allclose(out, expected)


def test_allreduce_bor_integer_bitmaps():
    """The DDP unused-parameter bitmap path: integer OR across ranks."""
    world = 3
    maps = [np.array([1, 0, 0, 1]), np.array([0, 1, 0, 1]), np.array([0, 0, 0, 0])]

    def body(hub, rank):
        buf = maps[rank].astype(np.int32)
        alg.allreduce_naive(hub, list(range(world)), rank, buf, "bor", tag="t")
        return buf

    results, _ = run_ranks(world, body)
    for out in results:
        assert np.array_equal(out, [1, 1, 0, 1])


def test_unknown_op_raises():
    hub = TransportHub(1)
    with pytest.raises(ValueError, match="unknown reduce op"):
        alg.allreduce_ring(hub, [0], 0, np.zeros(3), "bogus")


class TestRingProperties:
    def test_message_count_is_2p_minus_2(self):
        world = 5

        def body(hub, rank):
            buf = np.zeros(25)
            alg.allreduce_ring(hub, list(range(world)), rank, buf, "sum", tag="t")
            return None

        _, hub = run_ranks(world, body)
        assert hub.messages_sent == [2 * (world - 1)] * world

    def test_buffer_smaller_than_world(self):
        """Fewer elements than ranks still reduces correctly."""
        world = 6
        inputs = [np.array([float(r)]) for r in range(world)]

        def body(hub, rank):
            buf = inputs[rank].copy()
            alg.allreduce_ring(hub, list(range(world)), rank, buf, "sum", tag="t")
            return buf

        results, _ = run_ranks(world, body)
        for out in results:
            assert np.allclose(out, 15.0)

    def test_2d_buffer_supported(self):
        world = 3

        def body(hub, rank):
            buf = np.full((2, 4), float(rank))
            alg.allreduce_ring(hub, list(range(world)), rank, buf, "sum", tag="t")
            return buf

        results, _ = run_ranks(world, body)
        for out in results:
            assert np.allclose(out, 3.0)


class TestBroadcast:
    @pytest.mark.parametrize("world", WORLD_SIZES)
    @pytest.mark.parametrize("root_offset", [0, 1])
    def test_all_ranks_receive_root_value(self, world, root_offset):
        root = root_offset % world
        payload = np.arange(11.0)

        def body(hub, rank):
            buf = payload.copy() if rank == root else np.zeros(11)
            alg.broadcast(hub, list(range(world)), rank, buf, root=root, tag="t")
            return buf

        results, _ = run_ranks(world, body)
        for out in results:
            assert np.array_equal(out, payload)


class TestAllGatherReduceScatter:
    @pytest.mark.parametrize("world", [1, 2, 4, 5])
    def test_allgather(self, world):
        inputs = [np.full(3, float(r)) for r in range(world)]

        def body(hub, rank):
            return alg.allgather(hub, list(range(world)), rank, inputs[rank].copy())

        results, _ = run_ranks(world, body)
        expected = np.stack(inputs)
        for out in results:
            assert np.array_equal(out, expected)

    @pytest.mark.parametrize("world", [2, 3, 4])
    def test_reduce_scatter_owns_correct_chunk(self, world):
        rng = np.random.default_rng(1)
        inputs = [rng.standard_normal(12) for _ in range(world)]
        expected = np.sum(inputs, axis=0)
        chunks = np.array_split(np.arange(12), world)

        def body(hub, rank):
            return alg.reduce_scatter(hub, list(range(world)), rank, inputs[rank].copy())

        results, _ = run_ranks(world, body)
        for rank, out in enumerate(results):
            owned = (rank + 1) % world
            assert np.allclose(out, expected[chunks[owned]])

    def test_barrier_completes(self):
        def body(hub, rank):
            alg.barrier(hub, list(range(4)), rank)
            return True

        results, _ = run_ranks(4, body)
        assert all(results)


class TestSubgroupRanks:
    def test_collectives_over_global_rank_subset(self):
        """Algorithms operate on arbitrary global-rank lists (sub-groups)."""
        world = 4
        members = [1, 3]

        def body(hub, rank):
            if rank not in members:
                return None
            me = members.index(rank)
            buf = np.full(4, float(rank))
            alg.allreduce_ring(hub, members, me, buf, "sum", tag="sub")
            return buf

        results, _ = run_ranks(world, body)
        assert results[0] is None and results[2] is None
        assert np.allclose(results[1], 4.0)
        assert np.allclose(results[3], 4.0)
