"""Chrome-trace export of simulated timelines."""

import json
import os
import tempfile

import pytest

from repro.simulation import (
    SimulationConfig,
    TrainingSimulator,
    export_chrome_trace,
    iteration_trace_events,
)
from repro.simulation.models import resnet50_profile


@pytest.fixture
def simulator():
    return TrainingSimulator(
        SimulationConfig(model=resnet50_profile(), world_size=16, backend="nccl")
    )


class TestIterationEvents:
    def test_result_carries_events(self, simulator):
        result = simulator.simulate_iteration(0)
        labels = {label for label, *_ in result.events}
        assert "forward" in labels
        assert "backward_compute" in labels
        assert "optimizer" in labels
        assert any(label.startswith("allreduce:bucket") for label in labels)

    def test_comm_overlaps_backward_compute(self, simulator):
        result = simulator.simulate_iteration(0)
        backward = next(e for e in result.events if e[0] == "backward_compute")
        comm = [e for e in result.events if e[0].startswith("allreduce")]
        # at least one AllReduce starts before backward compute ends
        assert any(start < backward[3] for _, _, start, _ in comm)

    def test_events_within_iteration(self, simulator):
        result = simulator.simulate_iteration(0)
        for label, _, start, end in result.events:
            assert 0.0 <= start <= end <= result.total + 1e-9

    def test_unsynced_iteration_has_no_comm_events(self):
        sim = TrainingSimulator(
            SimulationConfig(
                model=resnet50_profile(), world_size=8, backend="nccl", sync_every=2
            )
        )
        result = sim.simulate_iteration(1)  # skipped-sync iteration
        assert not any(label.startswith("allreduce") for label, *_ in result.events)


class TestChromeExport:
    def test_event_format(self, simulator):
        events = iteration_trace_events(simulator, iterations=2)
        complete = [e for e in events if e.get("ph") == "X"]
        assert complete
        for event in complete:
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["dur"] >= 0
        metadata = [e for e in events if e.get("ph") == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert "compute" in names and "comm0" in names

    def test_iterations_are_sequential(self, simulator):
        events = iteration_trace_events(simulator, iterations=2)
        markers = sorted(
            (e for e in events if e.get("cat") == "iteration"), key=lambda e: e["ts"]
        )
        assert len(markers) == 2
        assert markers[1]["ts"] >= markers[0]["ts"] + markers[0]["dur"] - 1e-6

    def test_export_writes_valid_json(self, simulator):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.json")
            out = export_chrome_trace(simulator, path, iterations=1)
            assert out == path
            with open(path) as handle:
                payload = json.load(handle)
            assert "traceEvents" in payload
            assert len(payload["traceEvents"]) > 3
