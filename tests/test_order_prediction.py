"""Backward-order tracing and rebucketing (paper §6.2.1)."""

import numpy as np
import pytest

from repro.core.bucket import validate_assignment
from repro.core.order_prediction import BackwardOrderTracer
from repro.nn.module import Parameter


def params_of_sizes(*sizes):
    return [Parameter(np.zeros(s)) for s in sizes]


class TestTracing:
    def test_trace_completes_per_iteration(self):
        tracer = BackwardOrderTracer(num_params=3)
        for index in (2, 1, 0):
            tracer.record(index)
        assert tracer.completed_traces == 1
        assert tracer.observed_order() == (2, 1, 0)

    def test_partial_trace_closed_explicitly(self):
        tracer = BackwardOrderTracer(num_params=3)
        tracer.record(2)
        tracer.end_iteration()
        assert tracer.completed_traces == 1
        assert tracer.observed_order() == (2,)

    def test_stability_requires_agreement(self):
        tracer = BackwardOrderTracer(num_params=2, stable_iterations=2)
        for order in [(1, 0), (0, 1)]:
            for index in order:
                tracer.record(index)
        assert not tracer.is_stable()
        for index in (0, 1):
            tracer.record(index)
        assert tracer.is_stable()

    def test_stability_needs_enough_traces(self):
        tracer = BackwardOrderTracer(num_params=2, stable_iterations=3)
        for _ in range(2):
            tracer.record(1)
            tracer.record(0)
        assert not tracer.is_stable()


class TestSuggestedAssignment:
    def _stable_tracer(self, order, repeats=3):
        tracer = BackwardOrderTracer(num_params=len(order), stable_iterations=repeats)
        for _ in range(repeats):
            for index in order:
                tracer.record(index)
        return tracer

    def test_unstable_returns_none(self):
        tracer = BackwardOrderTracer(num_params=2, stable_iterations=2)
        tracer.record(0)
        tracer.record(1)
        assert tracer.suggest_assignment(params_of_sizes(2, 2)) is None

    def test_assignment_covers_all_params(self):
        params = params_of_sizes(4, 4, 4, 4)
        tracer = self._stable_tracer((1, 3, 0, 2))
        specs = tracer.suggest_assignment(params, bucket_cap_mb=1.0)
        validate_assignment(specs, 4)

    def test_first_bucket_holds_first_ready_params(self):
        """Bucket 0 contains the gradients observed ready first."""
        params = params_of_sizes(4, 4, 4, 4)
        tracer = self._stable_tracer((1, 3, 0, 2))
        specs = tracer.suggest_assignment(params, bucket_cap_mb=2 * 4 * 8 / (1024 * 1024))
        assert specs[0].param_indices == (1, 3)
        assert specs[1].param_indices == (0, 2)

    def test_untraced_params_appended_last(self):
        params = params_of_sizes(4, 4, 4)
        tracer = BackwardOrderTracer(num_params=3, stable_iterations=2)
        for _ in range(2):
            tracer.record(2)
            tracer.record(0)
            tracer.end_iteration()
        # traces are length-2 (param 1 never fires); stability holds
        assert tracer.is_stable()
        specs = tracer.suggest_assignment(params, bucket_cap_mb=1.0)
        validate_assignment(specs, 3)
        all_indices = [i for s in specs for i in s.param_indices]
        assert all_indices == [2, 0, 1]

    def test_reducer_accepts_suggested_assignment(self):
        from repro.core.reducer import Reducer

        class _Group:
            size = 1
            supports_cpu_tensors = True

            def allreduce(self, tensor, op="sum", async_op=False):
                class _W:
                    def wait(self, timeout=None):
                        pass

                return _W() if async_op else None

        params = params_of_sizes(4, 4, 4)
        tracer = self._stable_tracer((2, 0, 1))
        specs = tracer.suggest_assignment(params, bucket_cap_mb=1.0)
        reducer = Reducer(params, specs, _Group())
        reducer.prepare_for_backward([])
        sum((p * 1.0).sum() for p in params).backward()
        assert reducer.finalized
