"""Hot-path overhaul: zero-copy buckets, layout cache, chunked collectives.

Covers the acceptance criteria of the flat-bucket data path:

* after backward, each parameter's ``.grad`` aliases its bucket's flat
  buffer (no gather copy on launch, no write-back copy on finalize);
* steady-state iterations perform zero layout allocations, and a
  graph change invalidates the cache, rebuilds, and stays numerically
  identical;
* chunked ring/halving-doubling match ``allreduce_naive`` on odd
  sizes, non-divisible chunk counts, and world sizes 1–5;
* multi-stream process groups keep collectives correct and matched.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import algorithms as alg
from repro.comm import get_context
from repro.comm.transport import TransportHub
from repro.core import DistributedDataParallel
from repro.core.bucket import (
    BucketLayoutCache,
    cached_bucket_assignment,
    compute_bucket_assignment,
)
from repro.core.reducer import Reducer
from repro.nn.module import Parameter
from repro.optim import SGD
from repro.utils import manual_seed

from conftest import run_world, small_classifier
from test_reducer import RecordingGroup, make_reducer


def _run_ranks(world, fn, timeout=15.0):
    """Run ``fn(hub, ranks, me)`` on plain threads (no process group)."""
    import threading

    hub = TransportHub(world, default_timeout=timeout)
    ranks = list(range(world))
    results = [None] * world
    errors = []

    def body(rank):
        try:
            results[rank] = fn(hub, ranks, rank)
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
            hub.close()

    threads = [threading.Thread(target=body, args=(r,), daemon=True) for r in ranks]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout * 2)
    if errors:
        raise errors[0]
    return results


class TestZeroCopyViews:
    def test_grad_aliases_bucket_after_backward(self):
        params, reducer, group = make_reducer()
        reducer.prepare_for_backward([])
        sum((p * 2.0).sum() for p in params).backward()
        assert reducer.finalized
        for index, param in enumerate(params):
            position, slot = reducer._locator[index]
            bucket = reducer.buckets[position]
            assert param.grad is not None
            assert np.shares_memory(param.grad.data, bucket.flat)

    def test_no_copies_on_hot_path(self):
        params, reducer, group = make_reducer()
        for _ in range(3):
            reducer.prepare_for_backward([])
            sum((p * 2.0).sum() for p in params).backward()
        assert reducer.grad_copy_count == 0
        assert reducer.zero_copy_hits == 3 * len(params)

    def test_copy_mode_matches_view_mode_numerically(self):
        grads = {}
        for view in (False, True):
            params, reducer, group = make_reducer(gradient_as_bucket_view=view)
            reducer.prepare_for_backward([])
            sum(((p + 1.0) ** 2).sum() for p in params).backward()
            grads[view] = [p.grad.data.copy() for p in params]
            if not view:
                for p in params:
                    position, slot = reducer._locator[0]
                    assert not np.shares_memory(
                        p.grad.data, reducer.buckets[position].flat
                    )
        for a, b in zip(grads[False], grads[True]):
            np.testing.assert_allclose(a, b)

    def test_zero_grad_then_next_iteration_realiases(self):
        params, reducer, group = make_reducer()
        reducer.prepare_for_backward([])
        sum((p * 2.0).sum() for p in params).backward()
        for p in params:
            p.grad = None  # optimizer.zero_grad()
        reducer.prepare_for_backward([])
        sum((p * 3.0).sum() for p in params).backward()
        for index, param in enumerate(params):
            position, _ = reducer._locator[index]
            assert np.shares_memory(param.grad.data, reducer.buckets[position].flat)
            assert np.allclose(param.grad.data, 3.0)

    def test_detach_hooks_privatizes_gradients(self):
        params, reducer, group = make_reducer()
        reducer.prepare_for_backward([])
        sum((p * 2.0).sum() for p in params).backward()
        reducer.detach_hooks()
        for index, param in enumerate(params):
            position, _ = reducer._locator[index]
            assert not np.shares_memory(param.grad.data, reducer.buckets[position].flat)
            assert np.allclose(param.grad.data, 2.0)

    def test_ddp_end_to_end_zero_copy(self):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((8, 6))
        Y = rng.integers(0, 4, 8)

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.001)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(2):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            stats = ddp.ddp_stats()
            aliasing = all(
                np.shares_memory(p.grad.data, b.flat)
                for p in ddp.reducer.params
                for b in [ddp.reducer.buckets[ddp.reducer._locator[
                    ddp.reducer.params.index(p)][0]]]
            )
            return stats["grad_copy_count"], stats["zero_copy_hits"], aliasing

        results = run_world(2, body, backend="gloo")
        for copies, hits, aliasing in results:
            assert copies == 0
            assert hits > 0
            assert aliasing

    def test_view_and_copy_mode_training_identical(self):
        rng = np.random.default_rng(11)
        X = rng.standard_normal((8, 6))
        Y = rng.integers(0, 4, 8)

        def train(view):
            def body(rank):
                model = small_classifier()
                ddp = DistributedDataParallel(
                    model, bucket_cap_mb=0.001, gradient_as_bucket_view=view
                )
                opt = SGD(ddp.parameters(), lr=0.05)
                loss_fn = nn.CrossEntropyLoss()
                shard = slice(rank * 4, (rank + 1) * 4)
                for _ in range(3):
                    opt.zero_grad()
                    loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                    opt.step()
                return ddp.state_dict()

            return run_world(2, body, backend="gloo")

        with_view = train(True)
        without = train(False)
        for name in with_view[0]:
            np.testing.assert_allclose(with_view[0][name], without[0][name])

    def test_globally_unused_gradient_survives_zero_fill(self):
        """§3.2.3: a parameter unused on *every* rank keeps its gradient,
        even though its (aliased) bucket slot was zeroed and reduced."""
        params, reducer, group = make_reducer(
            sizes=(4, 4), find_unused_parameters=True
        )
        # Iteration 1: both params used; grads alias bucket slots, and
        # the finalize's bitmap AllReduce consumes the usage record.
        out1 = sum((p * 2.0).sum() for p in params)
        reducer.prepare_for_backward([out1])
        out1.backward()
        kept = params[1].grad.data.copy()
        # Iteration 2: param 1 unused everywhere (fake group's bitmap
        # allreduce just scales the local bitmap, so unused stays 0).
        out = (params[0] * 2.0).sum()
        reducer.prepare_for_backward([out])
        out.backward()
        assert reducer.finalized
        np.testing.assert_allclose(params[1].grad.data, kept)


class TestLayoutCache:
    def test_same_signature_hits_cache(self):
        cache = BucketLayoutCache()
        params_a = [Parameter(np.zeros(4)), Parameter(np.zeros((2, 3)))]
        params_b = [Parameter(np.ones(4)), Parameter(np.ones((2, 3)))]
        first = cache.get(params_a, 1024)
        second = cache.get(params_b, 1024)  # same shapes → same layout
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_graph_change_misses_cache(self):
        cache = BucketLayoutCache()
        cache.get([Parameter(np.zeros(4))], 1024)
        cache.get([Parameter(np.zeros(5))], 1024)
        cache.get([Parameter(np.zeros(4))], 2048)
        assert cache.stats()["misses"] == 3
        cache.invalidate()
        assert len(cache) == 0

    def test_cached_assignment_matches_computed(self):
        params = [Parameter(np.zeros(7)), Parameter(np.zeros((3, 2)))]
        assert cached_bucket_assignment(params, 64) == compute_bucket_assignment(
            params, 64
        )

    def test_steady_state_zero_layout_allocations(self):
        params, reducer, group = make_reducer()
        baseline = reducer.layout_allocations
        for _ in range(4):
            reducer.prepare_for_backward([])
            sum((p * 1.0).sum() for p in params).backward()
        assert reducer.layout_allocations == baseline

    def test_identical_rebuild_is_noop(self):
        params, reducer, group = make_reducer(sizes=(4, 4, 4))
        specs = compute_bucket_assignment(params, bucket_cap_bytes=10**9)
        buckets_before = reducer.buckets
        allocs_before = reducer.layout_allocations
        reducer.rebuild_buckets(specs)
        assert reducer.buckets is buckets_before
        assert reducer.layout_allocations == allocs_before
        assert reducer.noop_rebuild_count == 1
        assert reducer.rebuilt_bucket_count == 1

    def test_rebuild_after_graph_change_identical_results(self):
        """Graph change → rebuild → results identical to a fresh layout."""
        params, reducer, group = make_reducer(sizes=(4, 4, 4), cap_bytes=40)
        reducer.prepare_for_backward([])
        sum((p * 2.0).sum() for p in params).backward()
        new_specs = compute_bucket_assignment(params, bucket_cap_bytes=10**9)
        reducer.rebuild_buckets(new_specs)
        assert reducer.rebuilt_bucket_count == 1
        assert reducer.noop_rebuild_count == 0
        for p in params:
            p.grad = None  # optimizer.zero_grad() between iterations
        reducer.prepare_for_backward([])
        sum((p * 3.0).sum() for p in params).backward()
        for index, param in enumerate(params):
            assert np.allclose(param.grad.data, 3.0)
            position, _ = reducer._locator[index]
            assert np.shares_memory(param.grad.data, reducer.buckets[position].flat)

    def test_rebuild_migrates_live_gradients(self):
        params, reducer, group = make_reducer(sizes=(4, 4), cap_bytes=40)
        reducer.prepare_for_backward([])
        sum((p * 2.0).sum() for p in params).backward()
        values = [p.grad.data.copy() for p in params]
        reducer.rebuild_buckets(compute_bucket_assignment(params, 10**9))
        for param, value in zip(params, values):
            np.testing.assert_allclose(param.grad.data, value)


WORLDS_1_TO_5 = [1, 2, 3, 4, 5]
ODD_SIZES = [1, 3, 17, 97]
CHUNKED_ALGOS = [alg.allreduce_ring, alg.allreduce_halving_doubling, alg.allreduce_tree]


class TestChunkedCollectives:
    @pytest.mark.parametrize("world", WORLDS_1_TO_5)
    @pytest.mark.parametrize("size", ODD_SIZES)
    @pytest.mark.parametrize("fn", CHUNKED_ALGOS, ids=lambda f: f.__name__)
    def test_matches_naive_on_odd_sizes(self, world, size, fn):
        rng = np.random.default_rng(world * 100 + size)
        inputs = [rng.standard_normal(size) for _ in range(world)]

        def chunked(hub, ranks, me):
            buf = inputs[me].copy()
            # 40-byte chunks: 5 fp64 elements → non-divisible chunk
            # counts for every odd size here.
            fn(hub, ranks, me, buf, "sum", "t", 15.0, 40)
            return buf

        def naive(hub, ranks, me):
            buf = inputs[me].copy()
            alg.allreduce_naive(hub, ranks, me, buf, "sum", "n", 15.0)
            return buf

        chunked_out = _run_ranks(world, chunked)
        naive_out = _run_ranks(world, naive)
        for mine, reference in zip(chunked_out, naive_out):
            np.testing.assert_allclose(mine, reference, rtol=1e-9)

    @pytest.mark.parametrize("chunk_bytes", [8, 24, 100, 10**9])
    def test_chunk_size_never_changes_result(self, chunk_bytes):
        world, size = 4, 53
        rng = np.random.default_rng(chunk_bytes % 1000)
        inputs = [rng.standard_normal(size) for _ in range(world)]
        expected = np.sum(inputs, axis=0)

        def body(hub, ranks, me):
            buf = inputs[me].copy()
            alg.allreduce_ring(hub, ranks, me, buf, "sum", "t", 15.0, chunk_bytes)
            return buf

        for out in _run_ranks(world, body):
            np.testing.assert_allclose(out, expected, rtol=1e-9)

    def test_chunking_multiplies_message_count(self):
        """25 fp64 elements, world 5 → 5-element segments; 2-element
        chunks (16 bytes) → 3 chunks per segment → 3·2(p−1) messages."""
        world = 5
        hub_counts = {}

        def body(hub, ranks, me):
            buf = np.ones(25)
            alg.allreduce_ring(hub, ranks, me, buf, "sum", "t", 15.0, 16)
            hub_counts[me] = hub.messages_sent[me]
            return buf

        _run_ranks(world, body)
        assert all(count == 3 * 2 * (world - 1) for count in hub_counts.values())

    def test_default_chunking_keeps_small_buffers_single_message(self):
        world = 5

        def body(hub, ranks, me):
            buf = np.ones(25)
            alg.allreduce_ring(hub, ranks, me, buf, "sum", "t", 15.0)
            return hub.messages_sent[me]

        counts = _run_ranks(world, body)
        assert counts == [2 * (world - 1)] * world

    def test_partition_spans_matches_array_split(self):
        for total, parts in [(12, 4), (13, 4), (3, 5), (0, 3), (25, 5)]:
            spans = alg.partition_spans(total, parts)
            reference = np.array_split(np.arange(total), parts)
            assert len(spans) == parts
            for (lo, hi), ref in zip(spans, reference):
                np.testing.assert_array_equal(np.arange(lo, hi), ref)

    def test_set_chunk_bytes_roundtrip(self):
        original = alg.get_chunk_bytes()
        try:
            alg.set_chunk_bytes(4096)
            assert alg.get_chunk_bytes() == 4096
            with pytest.raises(ValueError):
                alg.set_chunk_bytes(0)
        finally:
            alg.set_chunk_bytes(original)


class TestMultiStream:
    def test_many_async_collectives_two_streams(self):
        def body(rank):
            pg = get_context().default_group
            assert pg.num_streams == 2
            tensors = [Tensor(np.full(8, float(rank + 1 + i))) for i in range(12)]
            works = [pg.allreduce(t, async_op=True) for t in tensors]
            for w in works:
                w.wait()
            return [t.data.copy() for t in tensors]

        results = run_world(2, body, backend="gloo", num_streams=2)
        for i in range(12):
            expected = np.full(8, float(1 + i) + float(2 + i))
            for rank_result in results:
                np.testing.assert_allclose(rank_result[i], expected)

    def test_ddp_training_identical_across_stream_counts(self):
        rng = np.random.default_rng(23)
        X = rng.standard_normal((8, 6))
        Y = rng.integers(0, 4, 8)

        def train(streams):
            def body(rank):
                model = small_classifier()
                ddp = DistributedDataParallel(model, bucket_cap_mb=0.001)
                opt = SGD(ddp.parameters(), lr=0.05)
                loss_fn = nn.CrossEntropyLoss()
                shard = slice(rank * 4, (rank + 1) * 4)
                for _ in range(3):
                    opt.zero_grad()
                    loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                    opt.step()
                return ddp.state_dict()

            return run_world(2, body, backend="gloo", num_streams=streams)

        one = train(1)
        three = train(3)
        for name in one[0]:
            np.testing.assert_allclose(one[0][name], three[0][name])

    def test_shutdown_joins_all_streams(self):
        def body(rank):
            pg = get_context().default_group
            pg.allreduce(Tensor(np.ones(4)))
            assert pg.shutdown()
            return True

        assert all(run_world(2, body, backend="gloo", num_streams=4))
