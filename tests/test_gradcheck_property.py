"""Property-based gradient checking across random shapes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.autograd import gradcheck, ops

shapes_2d = st.tuples(st.integers(1, 4), st.integers(1, 4))


class TestElementwiseGradients:
    @settings(max_examples=20, deadline=None)
    @given(shape=shapes_2d, seed=st.integers(0, 10_000))
    def test_smooth_unary_chain(self, shape, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(shape)
        assert gradcheck(lambda x: (x.tanh().exp() * x.sigmoid()).sum(), [a])

    @settings(max_examples=20, deadline=None)
    @given(shape=shapes_2d, seed=st.integers(0, 10_000))
    def test_binary_mix(self, shape, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(shape)
        b = rng.standard_normal(shape) + 3.0  # keep away from div-by-0
        assert gradcheck(lambda x, y: ((x * y + x) / y).sum(), [a, b])

    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(1, 4),
        inner=st.integers(1, 4),
        cols=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_matmul_random_shapes(self, rows, inner, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((rows, inner))
        b = rng.standard_normal((inner, cols))
        assert gradcheck(lambda x, y: ((x @ y) ** 2).sum(), [a, b])

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes_2d, axis=st.sampled_from([0, 1]), seed=st.integers(0, 10_000))
    def test_softmax_any_axis(self, shape, axis, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(shape)
        assert gradcheck(lambda x: (ops.softmax(x, axis=axis) ** 3).sum(), [a])

    @settings(max_examples=15, deadline=None)
    @given(
        shape=st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3)),
        seed=st.integers(0, 10_000),
    )
    def test_reductions_3d(self, shape, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(shape)
        assert gradcheck(lambda x: (x.mean(axis=1) * x.sum(axis=(0, 2)).sum()).sum(), [a])

    @settings(max_examples=10, deadline=None)
    @given(
        batch=st.integers(1, 2),
        channels=st.integers(1, 3),
        size=st.integers(3, 5),
        seed=st.integers(0, 10_000),
    )
    def test_conv_random_configs(self, batch, channels, size, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch, channels, size, size))
        w = rng.standard_normal((2, channels, 2, 2))
        assert gradcheck(
            lambda a, b: (ops.conv2d(a, b, stride=1, padding=1) ** 2).sum(), [x, w]
        )
