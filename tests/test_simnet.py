"""Topology, cost models, device profiles, entitlement."""

import numpy as np
import pytest

from repro.simnet import (
    CPU_SERVER,
    GPU_V100,
    ClusterSpec,
    GlooCostModel,
    LinkType,
    NcclCostModel,
    SharedEntitlement,
    cost_model_for,
    dgx1_topology,
)
from repro.simulation.models import resnet152_profile, resnet50_profile


class TestTopology:
    def test_matrix_is_symmetric(self):
        topo = dgx1_topology()
        for i in range(8):
            for j in range(8):
                assert topo.link(i, j) == topo.link(j, i)

    def test_diagonal_is_self(self):
        topo = dgx1_topology()
        assert all(topo.link(i, i) == LinkType.SELF for i in range(8))

    def test_every_gpu_has_nvlink_peers(self):
        topo = dgx1_topology()
        for i in range(8):
            kinds = {topo.link(i, j) for j in range(8) if j != i}
            assert LinkType.NV1 in kinds or LinkType.NV2 in kinds
            assert LinkType.NODE in kinds  # and some host-routed peers

    def test_bandwidth_ordering(self):
        topo = dgx1_topology()
        nv2_pairs = [(1, 2)]
        node_pairs = [(0, 5)]
        assert topo.bandwidth(*nv2_pairs[0]) > topo.bandwidth(*node_pairs[0])

    def test_ring_bandwidth_is_bottleneck(self):
        topo = dgx1_topology()
        quad_ring = topo.ring_bandwidth([0, 1, 2, 3])
        cross_ring = topo.ring_bandwidth([0, 5, 1, 6])
        assert quad_ring > cross_ring

    def test_render_matches_fig5_format(self):
        text = dgx1_topology().render()
        assert "GPU0" in text and "NV2" in text and "NODE" in text

    def test_cluster_placement(self):
        cluster = ClusterSpec()
        placement = cluster.placement(12)
        assert placement[0] == (0, 0)
        assert placement[8] == (1, 0)
        assert not cluster.spans_servers(8)
        assert cluster.spans_servers(9)

    def test_cluster_capacity_enforced(self):
        with pytest.raises(ValueError):
            ClusterSpec().placement(100)

    def test_ring_bottleneck_drops_across_servers(self):
        cluster = ClusterSpec()
        assert cluster.ring_bottleneck_bandwidth(8) > cluster.ring_bottleneck_bandwidth(16)


class TestCostModels:
    def test_nccl_sweep_monotone_decreasing(self):
        """Fig. 2(a): total time falls as per-op size grows."""
        model = NcclCostModel()
        sizes = [1_000, 10_000, 100_000, 1_000_000, 10_000_000]
        times = [model.sweep_total_time(60_000_000, s) for s in sizes]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_gloo_sweep_saturates_near_500k(self):
        """Fig. 2(b): beyond ~500K params/op Gloo stops improving."""
        model = GlooCostModel()
        t_small = model.sweep_total_time(60_000_000, 10_000)
        t_500k = model.sweep_total_time(60_000_000, 500_000)
        t_10m = model.sweep_total_time(60_000_000, 10_000_000)
        assert t_small > 3 * t_500k  # strong gains up to the knee
        assert abs(t_10m - t_500k) < t_500k  # flat-ish after the knee

    def test_nccl_much_faster_than_gloo(self):
        nccl, gloo = NcclCostModel(), GlooCostModel()
        assert nccl.allreduce_time(1e6, 16) < gloo.allreduce_time(1e6, 16) / 2
        for nbytes in (25e6, 100e6):
            assert nccl.allreduce_time(nbytes, 16) < gloo.allreduce_time(nbytes, 16) / 3

    def test_allreduce_time_grows_with_world(self):
        model = NcclCostModel()
        times = [model.allreduce_time(25e6, w) for w in (2, 4, 8)]
        assert times[0] < times[1] < times[2]

    def test_intra_vs_inter_cliff(self):
        """Crossing the server boundary costs bandwidth (§6.1 lesson)."""
        model = NcclCostModel()
        assert model.allreduce_time(25e6, 16) > 3 * model.allreduce_time(25e6, 8)

    def test_bandwidth_factor_scales(self):
        model = NcclCostModel()
        healthy = model.allreduce_time(25e6, 32, bandwidth_factor=1.0)
        degraded = model.allreduce_time(25e6, 32, bandwidth_factor=0.5)
        assert degraded > healthy * 1.5

    def test_world_one_is_free_ish(self):
        model = NcclCostModel()
        assert model.allreduce_time(25e6, 1) <= model.launch_overhead
        assert model.allreduce_time(0, 4) == 0.0

    def test_stream_penalty(self):
        model = NcclCostModel()
        assert model.stream_penalty(1, 32) == 1.0
        # 3 streams fit under the inter-server link capacity
        assert model.stream_penalty(3, 32) == pytest.approx(1.0)
        # 5 streams oversubscribe it
        assert model.stream_penalty(5, 32) > 1.0

    def test_gloo_stream_penalty_kicks_in_early(self):
        model = GlooCostModel()
        assert model.stream_penalty(3, 32) > 1.0

    def test_broadcast_allgather_positive(self):
        model = NcclCostModel()
        assert model.broadcast_time(1e6, 8) > 0
        assert model.allgather_time(1e6, 8) > 0
        assert model.broadcast_time(1e6, 1) == 0.0

    def test_cost_model_for(self):
        assert cost_model_for("nccl").name == "nccl"
        assert cost_model_for("GLOO").name == "gloo"
        with pytest.raises(ValueError):
            cost_model_for("mpi")


class TestDeviceProfiles:
    def test_fig2c_gpu_anchor(self):
        backward = GPU_V100.backward_time(resnet152_profile())
        assert 0.2 < backward < 0.3  # ~250 ms

    def test_fig2d_cpu_anchor(self):
        backward = CPU_SERVER.backward_time(resnet152_profile())
        assert 5.0 < backward < 7.0  # ~6 s

    def test_forward_cheaper_than_backward(self):
        model = resnet50_profile()
        assert GPU_V100.forward_time(model) < GPU_V100.backward_time(model)

    def test_optimizer_time_small(self):
        model = resnet50_profile()
        assert GPU_V100.optimizer_time(model) < 0.2 * GPU_V100.backward_time(model)


class TestEntitlement:
    def test_ideal_applies_nothing(self):
        ent = SharedEntitlement.ideal()
        assert ent.bandwidth_factor(256) == 1.0
        assert ent.straggler_factor(256) == 1.0

    def test_bandwidth_degrades_with_scale(self):
        ent = SharedEntitlement()
        factors = [ent.bandwidth_factor(w) for w in (8, 32, 64, 128, 256)]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_interpolation_between_calibration_points(self):
        ent = SharedEntitlement()
        mid = ent.bandwidth_factor(96)
        assert ent.bandwidth_factor(128) < mid < ent.bandwidth_factor(64)

    def test_anomaly_multiplies(self):
        plain = SharedEntitlement()
        bumpy = SharedEntitlement(anomalies={16: 0.5})
        assert bumpy.bandwidth_factor(16) == pytest.approx(
            plain.bandwidth_factor(16) * 0.5
        )

    def test_straggler_grows_with_world(self):
        ent = SharedEntitlement()
        assert ent.straggler_factor(256) > ent.straggler_factor(8) > 1.0

    def test_noise_deterministic(self):
        ent = SharedEntitlement()
        assert ent.iteration_noise(32, 5) == ent.iteration_noise(32, 5)
        assert ent.iteration_noise(32, 5) != ent.iteration_noise(32, 6)

    def test_noise_spread_grows_with_scale(self):
        ent = SharedEntitlement()
        small = np.std([ent.iteration_noise(4, i) for i in range(200)])
        large = np.std([ent.iteration_noise(256, i) for i in range(200)])
        assert large > small
