"""ProcessGroup API: sync/async, consistency, backends, round-robin."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.comm import (
    CollectiveMismatchError,
    get_context,
    new_process_group,
    new_round_robin_group,
)
from repro.comm.process_group import ReduceOp, Work

from conftest import run_world


class TestBasicCollectives:
    def test_allreduce_sync(self):
        def body(rank):
            pg = get_context().default_group
            x = np.full(6, float(rank + 1))
            pg.allreduce(x)
            return x[0]

        assert run_world(3, body, backend="gloo") == [6.0, 6.0, 6.0]

    def test_allreduce_async_work(self):
        def body(rank):
            pg = get_context().default_group
            x = np.full(4, 1.0)
            work = pg.allreduce(x, async_op=True)
            assert isinstance(work, Work)
            work.wait()
            assert work.is_completed()
            return x[0]

        assert run_world(2, body, backend="gloo") == [2.0, 2.0]

    def test_many_async_inflight(self):
        """DDP's pattern: launch all buckets, then block on all."""
        def body(rank):
            pg = get_context().default_group
            buffers = [np.full(5, float(i + rank)) for i in range(8)]
            works = [pg.allreduce(b, async_op=True) for b in buffers]
            for w in works:
                w.wait()
            return [b[0] for b in buffers]

        results = run_world(2, body, backend="gloo")
        assert results[0] == [2.0 * i + 1.0 for i in range(8)]

    def test_broadcast_from_rank0(self):
        def body(rank):
            pg = get_context().default_group
            x = np.full(3, float(rank * 10 + 1))
            pg.broadcast(x, src=0)
            return x[0]

        assert run_world(3, body, backend="gloo") == [1.0, 1.0, 1.0]

    def test_allgather(self):
        def body(rank):
            pg = get_context().default_group
            out = pg.allgather(np.array([float(rank)]))
            return out.reshape(-1).tolist()

        results = run_world(3, body, backend="gloo")
        assert all(r == [0.0, 1.0, 2.0] for r in results)

    def test_reduce_scatter(self):
        def body(rank):
            pg = get_context().default_group
            return pg.reduce_scatter(np.arange(4.0)).tolist()

        results = run_world(2, body, backend="gloo")
        # each rank owns chunk (rank+1) % 2 of sum = [0,2,4,6]
        assert results[0] == [4.0, 6.0]
        assert results[1] == [0.0, 2.0]

    def test_barrier(self):
        def body(rank):
            get_context().default_group.barrier()
            return True

        assert run_world(4, body, backend="gloo") == [True] * 4

    def test_reduce_op_max(self):
        def body(rank):
            pg = get_context().default_group
            x = np.array([float(rank), float(-rank)])
            pg.allreduce(x, ReduceOp.MAX)
            return x.tolist()

        results = run_world(3, body, backend="gloo")
        assert results[0] == [2.0, 0.0]

    def test_bytes_accounted(self):
        def body(rank):
            pg = get_context().default_group
            pg.allreduce(np.zeros(10))
            return pg.bytes_communicated

        assert run_world(2, body, backend="gloo") == [80, 80]


class TestConsistencyChecking:
    def test_shape_mismatch_detected(self):
        def body(rank):
            pg = get_context().default_group
            pg.allreduce(np.zeros(3 if rank == 0 else 4))

        with pytest.raises(RuntimeError, match="mismatch"):
            run_world(2, body, backend="gloo", timeout=3)

    def test_op_type_mismatch_detected(self):
        def body(rank):
            pg = get_context().default_group
            if rank == 0:
                pg.allreduce(np.zeros(3))
            else:
                pg.broadcast(np.zeros(3))

        with pytest.raises(RuntimeError, match="mismatch"):
            run_world(2, body, backend="gloo", timeout=3)

    def test_dtype_mismatch_detected(self):
        def body(rank):
            pg = get_context().default_group
            dtype = np.float64 if rank == 0 else np.float32
            pg.allreduce(np.zeros(3, dtype=dtype))

        with pytest.raises(RuntimeError, match="mismatch"):
            run_world(2, body, backend="gloo", timeout=3)

    def test_matching_sequence_passes(self):
        def body(rank):
            pg = get_context().default_group
            for size in (3, 5, 1):
                pg.allreduce(np.zeros(size))
            return True

        assert run_world(2, body, backend="gloo") == [True, True]


class TestBackendPersonalities:
    def test_nccl_rejects_cpu_tensor(self):
        def body(rank):
            pg = get_context().default_group
            pg.allreduce(Tensor(np.zeros(3)))  # device defaults to cpu

        with pytest.raises(RuntimeError, match="cpu"):
            run_world(2, body, backend="nccl", timeout=3)

    def test_nccl_accepts_device_tensor(self):
        def body(rank):
            pg = get_context().default_group
            t = Tensor(np.full(3, 1.0), device=f"gpu:{rank}")
            pg.allreduce(t)
            return t.data[0]

        assert run_world(2, body, backend="nccl") == [2.0, 2.0]

    def test_nccl_accepts_raw_ndarray(self):
        """Raw arrays carry no device tag; treated as device memory."""
        def body(rank):
            pg = get_context().default_group
            x = np.ones(3)
            pg.allreduce(x)
            return x[0]

        assert run_world(2, body, backend="nccl") == [2.0, 2.0]

    def test_gloo_accepts_cpu_tensor(self):
        def body(rank):
            pg = get_context().default_group
            t = Tensor(np.full(2, 1.0))
            pg.allreduce(t)
            return t.data[0]

        assert run_world(2, body, backend="gloo") == [2.0, 2.0]

    def test_backend_algorithm_defaults(self):
        def body(rank):
            return (
                get_context().default_group.backend,
                get_context().default_group.algorithm,
            )

        nccl = run_world(2, body, backend="nccl")
        gloo = run_world(2, body, backend="gloo")
        assert nccl[0] == ("nccl", "ring")
        assert gloo[0] == ("gloo", "halving_doubling")


class TestSubgroupsAndRoundRobin:
    def test_subgroup_collective(self):
        def body(rank):
            sub = new_process_group("gloo", ranks=[0, 2])
            if rank in (0, 2):
                x = np.full(2, float(rank))
                sub.allreduce(x)
                return x[0]
            return None

        results = run_world(3, body)
        assert results[0] == 2.0 and results[2] == 2.0 and results[1] is None

    def test_non_members_get_none(self):
        def body(rank):
            sub = new_process_group("gloo", ranks=[0, 1])
            return sub.group_rank if sub is not None else None

        assert run_world(3, body) == [0, 1, None]

    def test_round_robin_results_match(self):
        def body(rank):
            rr = new_round_robin_group("gloo", num_groups=3)
            outs = []
            for i in range(7):
                x = np.full(3, float(rank + i))
                rr.allreduce(x)
                outs.append(x[0])
            rr.shutdown()
            return outs

        results = run_world(2, body)
        assert results[0] == [1.0 + 2 * i for i in range(7)]

    def test_round_robin_distributes_across_groups(self):
        def body(rank):
            rr = new_round_robin_group("gloo", num_groups=2)
            for _ in range(4):
                rr.allreduce(np.zeros(2))
            counts = [g.bytes_communicated for g in rr.groups]
            rr.shutdown()
            return counts

        results = run_world(2, body)
        assert results[0] == [32, 32]

    def test_round_robin_validation(self):
        from repro.comm.round_robin import RoundRobinProcessGroup

        with pytest.raises(ValueError):
            RoundRobinProcessGroup([])

    def test_round_robin_mismatch_names_inner_group(self):
        """A mismatch under round-robin dispatch must be attributed to
        the inner group that actually ran the collective — at *its*
        local sequence number, not the round-robin call index."""
        seen = {}

        def body(rank):
            rr = new_round_robin_group("gloo", num_groups=2)
            if rank == 0:
                seen["gids"] = [g._group_id for g in rr.groups]
            rr.allreduce(np.zeros(2))  # call 0 -> groups[0], its seq 0
            rr.allreduce(np.zeros(2))  # call 1 -> groups[1], its seq 0
            # call 2 -> groups[0] again, its seq 1; shapes diverge
            rr.allreduce(np.zeros(2 if rank == 0 else 5))

        with pytest.raises(RuntimeError, match="mismatch") as excinfo:
            run_world(2, body, timeout=3)
        gid_first, gid_second = seen["gids"]
        message = str(excinfo.value)
        assert f"collective #1 mismatch in group {gid_first}" in message
        assert f"group {gid_second}" not in message
