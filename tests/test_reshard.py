"""Cross-world resharding: checkpoints written at world A load at world B.

Buckets are world-independent (the layout's bucket assignment depends
only on the parameter list and cap), so a consolidated or per-shard
checkpoint can be reassembled into full flats and re-sliced by any
world's ``partition_spans`` — bitwise, because every optimizer here is
elementwise.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import run_distributed
from repro.optim import SGD, Adam
from repro.sharded import (
    FullyShardedDataParallel,
    ShardedDataParallel,
    ShardedOptimizer,
    reshard_state_dict,
)

from conftest import small_classifier

SMALL_BUCKETS = {"bucket_cap_mb": 0.0001}

_rng = np.random.default_rng(0)
X = _rng.standard_normal((24, 6))
Y = _rng.integers(0, 4, 24)
_loss_fn = nn.CrossEntropyLoss()


def _train_zero1(rank, world, iters=4):
    model = small_classifier()
    opt = ShardedOptimizer(
        model.parameters(), lambda ps: Adam(ps, lr=0.01), **SMALL_BUCKETS
    )
    per = len(X) // world
    shard = slice(rank * per, (rank + 1) * per)
    for _ in range(iters):
        opt.zero_grad()
        loss = _loss_fn(model(Tensor(X[shard])), Y[shard])
        loss.backward()
        # ZeRO-1 over a plain module: average grads by hand.
        from repro.comm.distributed import get_context

        group = get_context().default_group
        for p in model.parameters():
            if p.grad is not None:
                group.allreduce(p.grad.data)
                p.grad.data /= world
        opt.set_grads_from_params()
        opt.step()
    return model, opt


def _assert_state_dicts_equal(a, b):
    assert a["num_params"] == b["num_params"]
    assert sorted(a["state"]) == sorted(b["state"])
    for index in a["state"]:
        assert sorted(a["state"][index]) == sorted(b["state"][index])
        for key in a["state"][index]:
            va, vb = a["state"][index][key], b["state"][index][key]
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), (index, key)
            else:
                assert va == vb, (index, key)


class TestZero1Resharding:
    @pytest.mark.parametrize("saved_world,new_world", [(4, 2), (2, 4), (4, 3)])
    def test_consolidated_round_trips_across_worlds(
        self, saved_world, new_world
    ):
        def save_body(rank):
            _, opt = _train_zero1(rank, saved_world)
            return opt.consolidated_state_dict()

        saved = run_distributed(saved_world, save_body, backend="gloo")[0]

        def load_body(rank):
            model = small_classifier()
            opt = ShardedOptimizer(
                model.parameters(), lambda ps: Adam(ps, lr=0.01),
                **SMALL_BUCKETS,
            )
            opt.load_consolidated_state_dict(saved)
            return opt.consolidated_state_dict()

        for state in run_distributed(new_world, load_body, backend="gloo"):
            _assert_state_dicts_equal(saved, state)

    def test_reshard_state_dict_validates_num_params(self):
        def body(rank):
            model = small_classifier()
            opt = ShardedOptimizer(
                model.parameters(), lambda ps: SGD(ps, lr=0.05),
                **SMALL_BUCKETS,
            )
            bad = {"state": {}, "num_params": 99}
            with pytest.raises(ValueError, match="99 parameters"):
                reshard_state_dict(bad, opt.layout, opt.rank)
            return True

        assert run_distributed(2, body, backend="gloo") == [True, True]


def _train_wrapped(wrap, rank, world, iters=4):
    model = wrap()
    per = len(X) // world
    shard = slice(rank * per, (rank + 1) * per)
    for _ in range(iters):
        model.zero_grad()
        _loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
        model.step()
    return model


def _zero2_wrap():
    return ShardedDataParallel(
        small_classifier(), lambda ps: SGD(ps, lr=0.05), **SMALL_BUCKETS
    )


def _zero3_wrap():
    return FullyShardedDataParallel(
        small_classifier(), lambda ps: Adam(ps, lr=0.01)
    )


class TestWrapperResharding:
    @pytest.mark.parametrize("wrap", [_zero2_wrap, _zero3_wrap],
                             ids=["zero2", "zero3"])
    @pytest.mark.parametrize("saved_world,new_world", [(4, 2), (2, 4), (4, 3)])
    def test_training_state_crosses_worlds_bitwise(
        self, tmp_path, wrap, saved_world, new_world
    ):
        path = str(tmp_path / "sharded.npz")

        def save_body(rank):
            model = _train_wrapped(wrap, rank, saved_world)
            model.save_training_state(path, iteration=4)
            state = model.state_dict()  # collective for FSDP
            opt_state = model.optimizer.consolidated_state_dict()
            return state, opt_state

        ref_state, ref_opt = run_distributed(
            saved_world, save_body, backend="gloo"
        )[0]

        def load_body(rank):
            model = wrap()
            info = model.load_training_state(path)
            assert info["iteration"] == 4
            state = model.state_dict()
            opt_state = model.optimizer.consolidated_state_dict()
            return state, opt_state

        for state, opt_state in run_distributed(
            new_world, load_body, backend="gloo"
        ):
            for key, value in ref_state.items():
                assert np.array_equal(value, state[key]), key
            _assert_state_dicts_equal(ref_opt, opt_state)

    @pytest.mark.parametrize("wrap", [_zero2_wrap, _zero3_wrap],
                             ids=["zero2", "zero3"])
    def test_continued_training_matches_native_world(self, tmp_path, wrap):
        """Restore 4 -> 2, train on: losses equal a world-2 run restored
        from the same checkpoint at its native world (the carrier adds
        nothing — only the world schedule matters)."""
        path = str(tmp_path / "sharded.npz")

        def save_body(rank):
            model = _train_wrapped(wrap, rank, 4, iters=3)
            model.save_training_state(path, iteration=3)
            return True

        run_distributed(4, save_body, backend="gloo")

        def continue_body(rank):
            model = wrap()
            model.load_training_state(path)
            losses = []
            per = len(X) // 2
            shard = slice(rank * per, (rank + 1) * per)
            for _ in range(3):
                model.zero_grad()
                loss = _loss_fn(model(Tensor(X[shard])), Y[shard])
                loss.backward()
                model.step()
                losses.append(float(loss.data))
            return losses

        first = run_distributed(2, continue_body, backend="gloo")
        second = run_distributed(2, continue_body, backend="gloo")
        assert first == second  # restore is deterministic, bitwise
