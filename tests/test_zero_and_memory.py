"""ZeRO-style sharded optimizer and the §7 memory model."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.baselines import ZeroRedundancyOptimizer
from repro.core import DistributedDataParallel
from repro.optim import SGD, Adam
from repro.simulation.memory import memory_breakdown, memory_report
from repro.simulation.models import bert_profile, resnet50_profile

from conftest import run_world, small_classifier

RNG = np.random.default_rng(51)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


def _train(rank, make_optimizer, iters=5):
    model = small_classifier()
    ddp = DistributedDataParallel(model)
    optimizer = make_optimizer(ddp)
    loss_fn = nn.CrossEntropyLoss()
    shard = slice(rank * 4, (rank + 1) * 4)
    for _ in range(iters):
        optimizer.zero_grad()
        loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
        optimizer.step()
    return ddp.state_dict(), optimizer


class TestZeroRedundancyOptimizer:
    def test_equivalent_to_replicated_momentum_sgd(self):
        """Sharded optimizer states + owner broadcasts == replicated
        optimizers, exactly (the ZeRO stage-1 guarantee)."""

        def replicated(rank):
            state, _ = _train(rank, lambda ddp: SGD(ddp.parameters(), lr=0.05, momentum=0.9))
            return state

        def sharded(rank):
            def make(ddp):
                return ZeroRedundancyOptimizer(
                    ddp.parameters(),
                    lambda shard: SGD(shard, lr=0.05, momentum=0.9),
                    ddp.process_group,
                )

            state, _ = _train(rank, make)
            return state

        reference = run_world(2, replicated, backend="gloo")
        zero = run_world(2, sharded, backend="gloo")
        for name in reference[0]:
            assert np.allclose(zero[0][name], reference[0][name], atol=1e-12)
            assert np.allclose(zero[1][name], reference[1][name], atol=1e-12)

    def test_equivalent_with_adam(self):
        def replicated(rank):
            state, _ = _train(rank, lambda ddp: Adam(ddp.parameters(), lr=0.01))
            return state

        def sharded(rank):
            def make(ddp):
                return ZeroRedundancyOptimizer(
                    ddp.parameters(),
                    lambda shard: Adam(shard, lr=0.01),
                    ddp.process_group,
                )

            state, _ = _train(rank, make)
            return state

        reference = run_world(2, replicated, backend="gloo")
        zero = run_world(2, sharded, backend="gloo")
        for name in reference[0]:
            assert np.allclose(zero[0][name], reference[0][name], atol=1e-12)

    def test_state_is_actually_sharded(self):
        def body(rank):
            def make(ddp):
                return ZeroRedundancyOptimizer(
                    ddp.parameters(),
                    lambda shard: SGD(shard, lr=0.05, momentum=0.9),
                    ddp.process_group,
                )

            _, optimizer = _train(rank, make, iters=2)
            total = sum(p.numel() for p in optimizer.params)
            return optimizer.shard_numel(), total

        results = run_world(2, body, backend="gloo")
        shard_sizes = [s for s, _ in results]
        total = results[0][1]
        assert sum(shard_sizes) == total  # partition covers everything
        assert all(0 < s < total for s in shard_sizes)  # genuinely split

    def test_partition_is_deterministic_and_balanced(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            zro = ZeroRedundancyOptimizer(
                ddp.parameters(), lambda s: SGD(s, lr=0.1), ddp.process_group
            )
            return tuple(sorted(zro.owner_of.items()))

        maps = run_world(2, body, backend="gloo")
        assert maps[0] == maps[1]

    def test_owner_map_balances_sizes(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            zro = ZeroRedundancyOptimizer(
                ddp.parameters(), lambda s: SGD(s, lr=0.1), ddp.process_group
            )
            loads = [0, 0]
            for index, owner in zro.owner_of.items():
                loads[owner] += zro.params[index].numel()
            return loads

        loads = run_world(2, body, backend="gloo")[0]
        assert max(loads) < 2.5 * min(loads)

    def test_empty_params_rejected(self):
        class _PG:
            size = 2
            group_rank = 0

        with pytest.raises(ValueError):
            ZeroRedundancyOptimizer([], lambda s: None, _PG())


class TestMemoryModel:
    def test_ddp_replicates_everything(self):
        breakdown = memory_breakdown(resnet50_profile(), 16, "ddp", "adam")
        n = resnet50_profile().num_params
        assert breakdown.parameters == n * 4
        assert breakdown.gradients == n * 4
        assert breakdown.optimizer_state == n * 4 * 2

    def test_zero_stages_strictly_shrink(self):
        totals = [
            memory_breakdown(bert_profile(), 64, s, "adam").total
            for s in ("ddp", "zero1", "zero2", "zero3")
        ]
        assert totals[0] > totals[1] > totals[2] > totals[3]

    def test_zero1_shards_only_optimizer(self):
        ddp = memory_breakdown(resnet50_profile(), 8, "ddp", "adam")
        z1 = memory_breakdown(resnet50_profile(), 8, "zero1", "adam")
        assert z1.parameters == ddp.parameters
        assert z1.gradients == ddp.gradients
        assert z1.optimizer_state == pytest.approx(ddp.optimizer_state / 8)

    def test_plain_sgd_has_no_state(self):
        breakdown = memory_breakdown(resnet50_profile(), 8, "ddp", "sgd")
        assert breakdown.optimizer_state == 0.0

    def test_report_rows(self):
        rows = memory_report(bert_profile(), 256)
        assert [r[0] for r in rows] == ["ddp", "zero1", "zero2", "zero3"]
        assert rows[0][-1] > rows[-1][-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_breakdown(resnet50_profile(), 8, "zero9")
        with pytest.raises(ValueError):
            memory_breakdown(resnet50_profile(), 8, "ddp", "rmsprop")
