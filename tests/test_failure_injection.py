"""Failure injection: dropped/delayed messages, dying ranks, stragglers.

Distributed failures in real deployments surface as NCCL timeouts or
silent hangs; these tests verify the library turns each injected fault
into a *diagnosable* error rather than a deadlock or corruption.

Faults are injected through the first-class :class:`FaultPlan` API
(``repro.resilience``) installed on a plain ``TransportHub`` — the
*unreliable* wire.  ``tests/test_resilience.py`` covers the same faults
on the retrying :class:`ReliableTransportHub`, where they are absorbed
instead of fatal.
"""

import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import get_context, run_distributed
from repro.comm.transport import TransportHub, TransportTimeoutError
from repro.comm import algorithms as alg
from repro.core import DistributedDataParallel
from repro.optim import SGD
from repro.resilience import FaultPlan, corrupt, drop, slow_rank

from conftest import run_world, small_classifier


def _run_on_hub(hub, world, fn, timeout=15):
    results = [None] * world
    errors = []

    def worker(rank):
        try:
            results[rank] = fn(hub, rank)
        except Exception as exc:  # noqa: BLE001
            errors.append((rank, exc))

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(world)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    return results, errors


class TestMessageLoss:
    def test_dropped_message_times_out_with_rank_info(self):
        """A lost ring chunk must surface as a timeout naming the peer."""
        hub = TransportHub(2, default_timeout=0.3)
        FaultPlan([drop(rank=0, times=1)]).install(hub)

        def body(h, rank):
            buf = np.ones(8)
            alg.allreduce_ring(h, [0, 1], rank, buf, "sum", tag="t")
            return buf

        _, errors = _run_on_hub(hub, 2, body)
        assert errors
        assert any(isinstance(e, TransportTimeoutError) for _, e in errors)
        message = str(next(e for _, e in errors if isinstance(e, TransportTimeoutError)))
        assert "rank" in message and "timed out" in message

    def test_drop_in_broadcast_detected(self):
        hub = TransportHub(4, default_timeout=0.3)
        plan = FaultPlan([drop(tag_contains="bc", times=1)]).install(hub)

        def body(h, rank):
            buf = np.full(4, float(rank))
            alg.broadcast(h, list(range(4)), rank, buf, root=0, tag="x")
            return buf

        _, errors = _run_on_hub(hub, 4, body)
        assert errors  # someone noticed
        assert plan.total_triggered() >= 1


class TestStragglers:
    def test_slow_rank_delays_but_does_not_break_collectives(self):
        hub = TransportHub(3, default_timeout=10)
        FaultPlan([slow_rank(2, 0.05)]).install(hub)

        def body(h, rank):
            buf = np.full(4, float(rank + 1))
            alg.allreduce_ring(h, [0, 1, 2], rank, buf, "sum", tag="t")
            return buf

        start = time.time()
        results, errors = _run_on_hub(hub, 3, body)
        elapsed = time.time() - start
        assert not errors
        for out in results:
            assert np.allclose(out, 6.0)
        # the straggler's sends gate the ring: 2(p-1)=4 delayed hops
        assert elapsed >= 0.05 * 2

    def test_ddp_training_tolerates_straggler(self):
        """DDP semantics are unaffected by timing skew — only latency."""
        rng = np.random.default_rng(0)
        X, Y = rng.standard_normal((4, 6)), rng.integers(0, 4, 4)

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 2, (rank + 1) * 2)
            for _ in range(2):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict()

        states = run_distributed(
            2, body, backend="gloo", timeout=10,
            fault_plan=FaultPlan([slow_rank(1, 0.01)]),
        )
        for name in states[0]:
            assert np.array_equal(states[0][name], states[1][name])


class TestCorruption:
    def test_corrupted_payload_breaks_replica_agreement(self):
        """On the plain (non-checksumming) hub, silent on-the-wire
        corruption is observable only as replica divergence — the
        invariant monitoring should check for this.  The reliable hub
        detects the same fault via checksums (test_resilience.py)."""
        rng = np.random.default_rng(0)
        X, Y = rng.standard_normal((4, 6)), rng.integers(0, 4, 4)

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.001)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 2, (rank + 1) * 2)
            opt.zero_grad()
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
            opt.step()
            return ddp.state_dict()

        states = run_distributed(
            2, body, backend="gloo", timeout=5,
            fault_plan=FaultPlan([corrupt(times=1)]),
        )
        diverged = any(
            not np.array_equal(states[0][name], states[1][name]) for name in states[0]
        )
        assert diverged


class TestRankDeath:
    def test_death_before_construction_blocks_rendezvous(self):
        def body(rank):
            if rank == 1:
                raise RuntimeError("died before joining the process group")
            # rank 0 blocks in rendezvous until the harness tears down
            get_context()
            DistributedDataParallel(small_classifier())

        with pytest.raises(RuntimeError, match="died before joining|rank"):
            run_world(2, body, backend="gloo", timeout=2)

    def test_death_mid_training_surfaces_original_error(self):
        rng = np.random.default_rng(0)
        X, Y = rng.standard_normal((4, 6)), rng.integers(0, 4, 4)

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 2, (rank + 1) * 2)
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
            if rank == 1:
                raise MemoryError("simulated OOM on rank 1")
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()

        with pytest.raises(RuntimeError, match="rank 1 failed: simulated OOM"):
            run_world(2, body, backend="gloo", timeout=5)
