"""The experiments package and its CLI."""

import numpy as np
import pytest

from repro.experiments import ablations, figures, render_rows
from repro.experiments.__main__ import EXPERIMENTS, main


class TestFigureGenerators:
    def test_fig02_sweep_shapes(self):
        rows = figures.fig02_allreduce_sweep("nccl")
        assert len(rows) == len(figures.FIG2_SWEEP)
        assert all(t > 0 for _, t in rows)

    def test_fig02_backward_rows(self):
        rows = figures.fig02_backward_curve("gpu", runs=5)
        assert len(rows) == 5
        medians = [r[1] for r in rows]
        assert medians == sorted(medians)  # cumulative curve
        for _, median, low, high in rows:
            assert low <= median <= high

    def test_fig06_has_four_combos(self):
        rows = figures.fig06_breakdown()
        assert len(rows) == 4
        assert {r[0] for r in rows} == {"resnet50", "bert"}

    def test_bucket_sweep_returns_best(self):
        rows, best = figures.bucket_size_sweep(16, iterations=4)
        assert set(best) == {
            ("resnet50", "nccl"), ("resnet50", "gloo"),
            ("bert", "nccl"), ("bert", "gloo"),
        }

    def test_fig09_all_worlds(self):
        results = figures.fig09_scalability(iterations=2)
        for latencies in results.values():
            assert len(latencies) == len(figures.SCALABILITY_WORLDS)
            assert latencies[-1] > latencies[0]

    def test_fig10_cadences(self):
        results = figures.fig10_skip_sync(cadences=(1, 8), iterations=8)
        assert results[("nccl", 8)][-1] < results[("nccl", 1)][-1]

    def test_fig12_streams(self):
        results = figures.fig12_round_robin(streams=(1, 3), iterations=2)
        assert len(results) == 8


class TestAblationGenerators:
    def test_design_progression_monotone(self):
        rows = ablations.design_progression(backends=("nccl",), worlds=(16,))
        latency = {r[2]: r[3] for r in rows}
        assert latency["overlapped"] < latency["bucketed"] < latency["naive"]

    def test_compression_projection(self):
        rows = ablations.compression_projection()
        hooks = {r[1] for r in rows}
        assert "onebit_int8" in hooks and "fp16" in hooks

    def test_order_prediction_triple(self):
        matched, mismatched, traced = ablations.order_prediction()
        assert matched < mismatched
        assert traced < mismatched

    def test_param_averaging_timeline(self):
        rows = ablations.param_averaging_timeline(backends=("gloo",), worlds=(32,))
        ((_, _, ddp_latency, avg_latency, _),) = rows
        assert ddp_latency < avg_latency


class TestRendering:
    def test_render_rows(self):
        text = render_rows("Title", ["a", "bb"], [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_empty_rows(self):
        text = render_rows("T", ["h"], [])
        assert "h" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "table1" in out

    def test_unknown(self, capsys):
        assert main(["nope"]) == 2

    def test_every_registered_experiment_runs(self, capsys):
        # the cheap ones; fig07-10/12 are exercised via figures tests
        for name in ("fig02a", "fig02b", "fig05", "fig06", "table1",
                     "ablation-compression"):
            assert main([name]) == 0
            assert capsys.readouterr().out.strip()

    def test_experiment_registry_complete(self):
        expected = {"fig02a", "fig02b", "fig02c", "fig02d", "fig05", "fig06",
                    "fig07", "fig08", "fig09", "fig10", "fig12", "table1",
                    "ablation-design", "ablation-compression", "ablation-order",
                    "ablation-architectures", "ablation-memory"}
        assert expected == set(EXPERIMENTS)


class TestProfileFromModule:
    def test_roundtrip(self):
        from repro.models import MLP
        from repro.simulation import profile_from_module

        model = MLP(8, [16, 16], 4)
        profile = profile_from_module(model, "mlp", 0.01, 0.02)
        assert profile.num_params == model.num_parameters()
        assert profile.num_tensors == len(list(model.parameters()))
        assert profile.v100_backward_seconds == 0.02

    def test_simulatable(self):
        from repro.models import MLP
        from repro.simulation import (
            SimulationConfig,
            TrainingSimulator,
            profile_from_module,
        )

        profile = profile_from_module(MLP(8, [16], 4), "tiny", 0.001, 0.002)
        sim = TrainingSimulator(
            SimulationConfig(model=profile, world_size=4, backend="nccl")
        )
        assert sim.median_latency(4) > 0

    def test_empty_module_rejected(self):
        from repro import nn
        from repro.simulation import profile_from_module

        with pytest.raises(ValueError):
            profile_from_module(nn.ReLU(), "empty", 0.1, 0.1)


class TestMeasureComputeAnchors:
    def test_returns_positive_times(self):
        from repro.autograd import randn
        from repro.models import MLP
        from repro.simulation import measure_compute_anchors
        from repro.utils import manual_seed

        manual_seed(0)
        model = MLP(8, [32], 4)
        fwd, bwd = measure_compute_anchors(model, randn(16, 8), iterations=3)
        assert fwd > 0 and bwd > 0

    def test_feeds_profile_from_module(self):
        from repro.autograd import randn
        from repro.models import MLP
        from repro.simulation import (
            SimulationConfig,
            TrainingSimulator,
            measure_compute_anchors,
            profile_from_module,
        )
        from repro.utils import manual_seed

        manual_seed(0)
        model = MLP(8, [32], 4)
        fwd, bwd = measure_compute_anchors(model, randn(16, 8))
        profile = profile_from_module(model, "measured-mlp", fwd, bwd)
        sim = TrainingSimulator(
            SimulationConfig(model=profile, world_size=4, backend="gloo")
        )
        assert sim.median_latency(2) > 0
