"""Gradient-compression communication hooks (paper §6.2.3)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core import DistributedDataParallel, comm_hooks
from repro.optim import SGD
from repro.utils import manual_seed

from conftest import run_world, small_classifier

RNG = np.random.default_rng(9)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


def grads_with_hook(hook_factory, world=2, iters=1):
    def body(rank):
        model = small_classifier()
        ddp = DistributedDataParallel(model, comm_hook=hook_factory() if hook_factory else None)
        loss_fn = nn.CrossEntropyLoss()
        shard = slice(rank * 4, (rank + 1) * 4)
        for _ in range(iters):
            model.zero_grad()
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
        return {n: p.grad.data.copy() for n, p in model.named_parameters()}

    return run_world(world, body, backend="gloo")


class TestAllreduceHook:
    def test_identity_hook_matches_native(self):
        native = grads_with_hook(None)
        hooked = grads_with_hook(lambda: comm_hooks.allreduce_hook)
        for name in native[0]:
            assert np.allclose(native[0][name], hooked[0][name], atol=1e-12)

    def test_ranks_agree(self):
        hooked = grads_with_hook(lambda: comm_hooks.allreduce_hook)
        for name in hooked[0]:
            assert np.allclose(hooked[0][name], hooked[1][name])


class TestFp16Hook:
    def test_close_to_exact_average(self):
        native = grads_with_hook(None)
        fp16 = grads_with_hook(lambda: comm_hooks.fp16_compress_hook)
        for name in native[0]:
            scale = np.abs(native[0][name]).max() + 1e-12
            err = np.abs(native[0][name] - fp16[0][name]).max() / scale
            assert err < 5e-3  # float16 relative precision

    def test_ranks_agree(self):
        fp16 = grads_with_hook(lambda: comm_hooks.fp16_compress_hook)
        for name in fp16[0]:
            assert np.allclose(fp16[0][name], fp16[1][name])


class TestQuantize8Hook:
    def test_bounded_error(self):
        native = grads_with_hook(None)
        q8 = grads_with_hook(lambda: comm_hooks.quantize8_hook)
        # The quantization grid is shared per *bucket*, so compare
        # against the global gradient scale.
        global_scale = max(np.abs(g).max() for g in native[0].values())
        for name in native[0]:
            err = np.abs(native[0][name] - q8[0][name]).max()
            assert err < global_scale * 1.5 / 127  # about one level


class TestOneBitHook:
    def test_signs_survive_when_ranks_agree(self):
        """With identical batches on both ranks, per-rank signs agree
        and the compressed gradient keeps every direction exactly."""

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, comm_hook=comm_hooks.OneBitSGDHook())
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return {n: p.grad.data.copy() for n, p in model.named_parameters()}

        native = grads_with_hook(None)

        def native_body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return {n: p.grad.data.copy() for n, p in model.named_parameters()}

        native = run_world(2, native_body, backend="gloo")
        compressed = run_world(2, body, backend="gloo")
        for name in native[0]:
            g = native[0][name].reshape(-1)
            c = compressed[0][name].reshape(-1)
            nonzero = np.abs(g) > 1e-12
            assert np.all(np.sign(g[nonzero]) == np.sign(c[nonzero]))

    def test_error_feedback_accumulates(self):
        hook = comm_hooks.OneBitSGDHook()

        class OneRankGroup:
            size = 1
            supports_cpu_tensors = True

            def allreduce(self, tensor, op="sum", async_op=False):
                class _W:
                    def wait(self, timeout=None):
                        pass

                return _W() if async_op else None

        bucket = Tensor(np.array([1.0, -0.1, 0.1]))
        work = hook(OneRankGroup(), bucket, 1)
        work.wait()
        # residual memory must be non-zero (compression was lossy)
        (err,) = [e for e in hook._error.values()]
        assert np.abs(err).sum() > 0

    def test_training_still_converges(self):
        """End-to-end: 1-bit compressed DDP training reduces loss."""

        def body(rank):
            manual_seed(7)
            model = small_classifier()
            ddp = DistributedDataParallel(model, comm_hook=comm_hooks.OneBitSGDHook())
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            losses = []
            for _ in range(80):
                opt.zero_grad()
                loss = loss_fn(ddp(Tensor(X[shard])), Y[shard])
                loss.backward()
                opt.step()
                losses.append(loss.item())
            return losses[0], losses[-1]

        for first, last in run_world(2, body, backend="gloo", timeout=60):
            assert last < first * 0.78


class _FakeOneRankGroup:
    """World-1 group: allreduce is identity, allgather stacks self."""

    size = 1
    supports_cpu_tensors = True

    class _Work:
        def __init__(self, result=None):
            self.result = result

        def wait(self, timeout=None):
            pass

    def allreduce(self, tensor, op="sum", async_op=False):
        return self._Work() if async_op else None

    def allgather(self, tensor, async_op=False):
        data = tensor.data if hasattr(tensor, "data") else tensor
        stacked = np.stack([np.asarray(data).copy()])
        if async_op:
            return self._Work(result=[stacked])
        return stacked


def run_hook(hook, values, world=1):
    """Apply ``hook`` to a fresh bucket holding ``values``; return the
    decompressed bucket contents."""
    bucket = Tensor(np.array(values, dtype=np.float64))
    hook(_FakeOneRankGroup(), bucket, world).wait()
    return bucket.data


class TestErrorFeedback:
    def test_fp16_residual_accumulates_across_iterations(self):
        hook = comm_hooks.Fp16Hook(use_error_feedback=True)
        # A value float16 cannot represent exactly: the rounding error
        # must land in the residual, and the *same* buffer's second
        # iteration must start from it.
        bucket = Tensor(np.array([1.0 + 1e-4, -2.0 - 1e-4]))
        original = bucket.data.copy()
        hook(_FakeOneRankGroup(), bucket, 1).wait()
        residuals = list(hook._residuals._store.values())
        assert len(residuals) == 1
        first_residual = residuals[0].copy()
        assert np.abs(first_residual).sum() > 0
        # residual + transmitted == what this rank wanted to send
        assert np.allclose(first_residual + bucket.data, original, atol=1e-12)
        # Second iteration on the same buffer: the correction shifts the
        # wire value, so two lossy steps do not lose the error twice.
        bucket.data[...] = original
        hook(_FakeOneRankGroup(), bucket, 1).wait()
        assert np.allclose(
            bucket.data,
            np.asarray(original + first_residual, dtype=np.float16).astype(
                np.float64
            ),
        )

    def test_topk_residual_holds_unsent_mass(self):
        hook = comm_hooks.TopKHook(density=0.25, use_error_feedback=True)
        values = np.array([10.0, 0.1, 0.2, 0.3, 9.0, 0.4, 0.5, 8.0])
        out = run_hook(hook, values)
        # k = 2 of 8: only the two largest survive on the wire.
        assert np.count_nonzero(out) == 2
        assert out[0] == 10.0 and out[4] == 9.0
        (residual,) = hook._residuals._store.values()
        # Everything unsent is preserved, selected entries zeroed.
        assert residual[0] == 0.0 and residual[4] == 0.0
        assert np.allclose(residual + out, values)

    def test_quantize8_error_feedback_reduces_drift(self):
        """Averaged over many iterations of a constant gradient, the EF
        variant's cumulative estimate converges to the truth while the
        plain variant keeps a constant bias."""
        constant = np.array([0.30000077, -0.7000013, 0.123456789])
        plain = comm_hooks.Quantize8Hook(use_error_feedback=False)
        with_ef = comm_hooks.Quantize8Hook(use_error_feedback=True)
        sums = {"plain": np.zeros(3), "ef": np.zeros(3)}
        plain_bucket = Tensor(constant.copy())
        ef_bucket = Tensor(constant.copy())
        iters = 64
        for _ in range(iters):
            plain_bucket.data[...] = constant
            plain(_FakeOneRankGroup(), plain_bucket, 1).wait()
            sums["plain"] += plain_bucket.data
            ef_bucket.data[...] = constant
            with_ef(_FakeOneRankGroup(), ef_bucket, 1).wait()
            sums["ef"] += ef_bucket.data
        err_plain = np.abs(sums["plain"] / iters - constant).max()
        err_ef = np.abs(sums["ef"] / iters - constant).max()
        assert err_ef < err_plain / 4

    def test_reset_clears_state(self):
        hook = comm_hooks.PowerSGDHook(rank=2)
        run_hook(hook, np.arange(16.0))
        assert hook._q and hook._residuals._store
        hook.reset()
        assert not hook._q and not hook._residuals._store

    def test_residual_store_survives_id_reuse_with_shape_check(self):
        store = comm_hooks._ResidualStore()
        a = np.zeros(4)
        ra = store.get(a)
        ra[...] = 1.0
        # Same id, different shape (simulated relayout reuse) => fresh.
        store._store[id(a)] = np.ones(7)
        again = store.get(a)
        assert again.shape == a.shape
        assert np.all(again == 0.0)


class TestAllreduceHookBitExact:
    def test_bit_exact_vs_native_over_iterations(self):
        """allreduce_hook must be *bit-identical* to the native reducer
        path — same collective, same divide — across several iterations."""
        native = grads_with_hook(None, iters=3)
        hooked = grads_with_hook(lambda: comm_hooks.allreduce_hook, iters=3)
        for name in native[0]:
            assert np.array_equal(native[0][name], hooked[0][name])


class TestPowerSGD:
    def _reconstruction_error(self, rank, matrix, iters=4):
        hook = comm_hooks.PowerSGDHook(rank=rank, use_error_feedback=False)
        flat = matrix.reshape(-1)
        bucket = Tensor(flat.copy())
        for _ in range(iters):  # warm-started Q: power iteration
            bucket.data[...] = flat
            hook(_FakeOneRankGroup(), bucket, 1).wait()
        return float(np.linalg.norm(bucket.data - flat) / np.linalg.norm(flat))

    def test_rank4_tighter_than_rank1(self):
        rng = np.random.default_rng(5)
        # Exactly rank-4 ground truth: rank-4 PowerSGD can nail it,
        # rank-1 can only capture the dominant direction.
        matrix = rng.standard_normal((36, 4)) @ rng.standard_normal((4, 36))
        err1 = self._reconstruction_error(1, matrix)
        err4 = self._reconstruction_error(4, matrix)
        assert err4 < err1
        assert err4 < 1e-6  # power iteration converges on exact low rank
        assert err1 < 1.0  # rank-1 still captures the top component

    def test_identical_seeds_identical_compression(self):
        rng = np.random.default_rng(6)
        values = rng.standard_normal(64)
        out_a = run_hook(comm_hooks.PowerSGDHook(rank=2, seed=3), values)
        out_b = run_hook(comm_hooks.PowerSGDHook(rank=2, seed=3), values)
        assert np.array_equal(out_a, out_b)


class TestHookBucketViewAliasing:
    """Stateful hooks must behave identically whether gradients are
    zero-copy views into the bucket buffers or private copies."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: comm_hooks.TopKHook(density=0.1),
            lambda: comm_hooks.PowerSGDHook(rank=2),
            lambda: comm_hooks.Fp16Hook(use_error_feedback=True),
        ],
        ids=["topk", "powersgd", "fp16_ef"],
    )
    def test_view_and_copy_modes_agree(self, factory):
        def train(as_view):
            def body(rank):
                manual_seed(7)
                model = small_classifier()
                ddp = DistributedDataParallel(
                    model,
                    comm_hook=factory(),
                    gradient_as_bucket_view=as_view,
                )
                opt = SGD(ddp.parameters(), lr=0.05)
                loss_fn = nn.CrossEntropyLoss()
                shard = slice(rank * 4, (rank + 1) * 4)
                for _ in range(5):
                    opt.zero_grad()
                    loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                    opt.step()
                stats = ddp.ddp_stats()
                return (
                    {n: p.grad.data.copy() for n, p in model.named_parameters()},
                    stats["zero_copy_hits"],
                )

            return run_world(2, body, backend="gloo", timeout=30)

        view_runs = train(True)
        copy_runs = train(False)
        # The zero-copy path was actually exercised in view mode only.
        assert view_runs[0][1] > 0
        assert copy_runs[0][1] == 0
        for name in view_runs[0][0]:
            assert np.allclose(
                view_runs[0][0][name], copy_runs[0][0][name], atol=1e-12
            )
            # and both ranks agree within each mode
            assert np.allclose(view_runs[0][0][name], view_runs[1][0][name])


class TestCompressionRatios:
    def test_ratios(self):
        assert comm_hooks.compression_ratio("fp16", 8) == 0.25
        assert comm_hooks.compression_ratio("onebit", 8) == 0.125
        assert comm_hooks.compression_ratio("allreduce", 8) == 1.0
        assert comm_hooks.compression_ratio("topk", density=0.05) == 0.1
        assert comm_hooks.compression_ratio("powersgd", rank=2, elements=1 << 20) < 0.01
        with pytest.raises(KeyError):
            comm_hooks.compression_ratio("bogus")

    def test_hook_factories_produce_fresh_instances(self):
        a = comm_hooks.make_hook("topk")
        b = comm_hooks.make_hook("topk")
        assert a is not b
        assert callable(comm_hooks.make_hook("allreduce"))
        with pytest.raises(ValueError):
            comm_hooks.make_hook("bogus")

    def test_register_comm_hook_after_construction(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            ddp.register_comm_hook(comm_hooks.fp16_compress_hook)
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return all(p.grad is not None for p in model.parameters())

        assert all(run_world(2, body, backend="gloo"))
