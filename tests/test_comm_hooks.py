"""Gradient-compression communication hooks (paper §6.2.3)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core import DistributedDataParallel, comm_hooks
from repro.optim import SGD
from repro.utils import manual_seed

from conftest import run_world, small_classifier

RNG = np.random.default_rng(9)
X = RNG.standard_normal((8, 6))
Y = RNG.integers(0, 4, 8)


def grads_with_hook(hook_factory, world=2, iters=1):
    def body(rank):
        model = small_classifier()
        ddp = DistributedDataParallel(model, comm_hook=hook_factory() if hook_factory else None)
        loss_fn = nn.CrossEntropyLoss()
        shard = slice(rank * 4, (rank + 1) * 4)
        for _ in range(iters):
            model.zero_grad()
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
        return {n: p.grad.data.copy() for n, p in model.named_parameters()}

    return run_world(world, body, backend="gloo")


class TestAllreduceHook:
    def test_identity_hook_matches_native(self):
        native = grads_with_hook(None)
        hooked = grads_with_hook(lambda: comm_hooks.allreduce_hook)
        for name in native[0]:
            assert np.allclose(native[0][name], hooked[0][name], atol=1e-12)

    def test_ranks_agree(self):
        hooked = grads_with_hook(lambda: comm_hooks.allreduce_hook)
        for name in hooked[0]:
            assert np.allclose(hooked[0][name], hooked[1][name])


class TestFp16Hook:
    def test_close_to_exact_average(self):
        native = grads_with_hook(None)
        fp16 = grads_with_hook(lambda: comm_hooks.fp16_compress_hook)
        for name in native[0]:
            scale = np.abs(native[0][name]).max() + 1e-12
            err = np.abs(native[0][name] - fp16[0][name]).max() / scale
            assert err < 5e-3  # float16 relative precision

    def test_ranks_agree(self):
        fp16 = grads_with_hook(lambda: comm_hooks.fp16_compress_hook)
        for name in fp16[0]:
            assert np.allclose(fp16[0][name], fp16[1][name])


class TestQuantize8Hook:
    def test_bounded_error(self):
        native = grads_with_hook(None)
        q8 = grads_with_hook(lambda: comm_hooks.quantize8_hook)
        # The quantization grid is shared per *bucket*, so compare
        # against the global gradient scale.
        global_scale = max(np.abs(g).max() for g in native[0].values())
        for name in native[0]:
            err = np.abs(native[0][name] - q8[0][name]).max()
            assert err < global_scale * 1.5 / 127  # about one level


class TestOneBitHook:
    def test_signs_survive_when_ranks_agree(self):
        """With identical batches on both ranks, per-rank signs agree
        and the compressed gradient keeps every direction exactly."""

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, comm_hook=comm_hooks.OneBitSGDHook())
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return {n: p.grad.data.copy() for n, p in model.named_parameters()}

        native = grads_with_hook(None)

        def native_body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return {n: p.grad.data.copy() for n, p in model.named_parameters()}

        native = run_world(2, native_body, backend="gloo")
        compressed = run_world(2, body, backend="gloo")
        for name in native[0]:
            g = native[0][name].reshape(-1)
            c = compressed[0][name].reshape(-1)
            nonzero = np.abs(g) > 1e-12
            assert np.all(np.sign(g[nonzero]) == np.sign(c[nonzero]))

    def test_error_feedback_accumulates(self):
        hook = comm_hooks.OneBitSGDHook()

        class OneRankGroup:
            size = 1
            supports_cpu_tensors = True

            def allreduce(self, tensor, op="sum", async_op=False):
                class _W:
                    def wait(self, timeout=None):
                        pass

                return _W() if async_op else None

        bucket = Tensor(np.array([1.0, -0.1, 0.1]))
        work = hook(OneRankGroup(), bucket, 1)
        work.wait()
        # residual memory must be non-zero (compression was lossy)
        (err,) = [e for e in hook._error.values()]
        assert np.abs(err).sum() > 0

    def test_training_still_converges(self):
        """End-to-end: 1-bit compressed DDP training reduces loss."""

        def body(rank):
            manual_seed(7)
            model = small_classifier()
            ddp = DistributedDataParallel(model, comm_hook=comm_hooks.OneBitSGDHook())
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            losses = []
            for _ in range(80):
                opt.zero_grad()
                loss = loss_fn(ddp(Tensor(X[shard])), Y[shard])
                loss.backward()
                opt.step()
                losses.append(loss.item())
            return losses[0], losses[-1]

        for first, last in run_world(2, body, backend="gloo", timeout=60):
            assert last < first * 0.78


class TestCompressionRatios:
    def test_ratios(self):
        assert comm_hooks.compression_ratio("fp16", 8) == 0.25
        assert comm_hooks.compression_ratio("onebit", 8) == 0.125
        assert comm_hooks.compression_ratio("allreduce", 8) == 1.0
        with pytest.raises(KeyError):
            comm_hooks.compression_ratio("bogus")

    def test_register_comm_hook_after_construction(self):
        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model)
            ddp.register_comm_hook(comm_hooks.fp16_compress_hook)
            nn.CrossEntropyLoss()(ddp(Tensor(X[:4])), Y[:4]).backward()
            return all(p.grad is not None for p in model.parameters())

        assert all(run_world(2, body, backend="gloo"))
