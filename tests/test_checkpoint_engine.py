"""Verified checkpoint format, manifests, and the async/replicated engine.

The chaos matrix at the bottom is the headline guarantee: with
``replication_factor=2``, delete any single rank's entire local
checkpoint directory and the newest generation still restores — from
the buddies' replicas — bitwise identical to a restore with every local
file present.
"""

import os
import shutil
import time

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.checkpoint import (
    ChecksumError,
    CheckpointEngine,
    Manifest,
    append_trailer,
    apply_retention,
    generation_dirname,
    list_generations,
    load_generation_manifest,
    load_verified_npz,
    npz_bytes,
    read_verified,
    verify_generation,
    write_manifest,
    write_verified,
)
from repro.comm import run_distributed
from repro.comm.distributed import get_context
from repro.optim import SGD, Adam
from repro.resilience import FaultPlan, corrupt_file, delay_write
from repro.sharded import ShardedDataParallel
from repro.utils.checkpoint import (
    load_training_checkpoint,
    save_training_checkpoint,
)

from conftest import small_classifier

_rng = np.random.default_rng(0)
X = _rng.standard_normal((24, 6))
Y = _rng.integers(0, 4, 24)
_loss_fn = nn.CrossEntropyLoss()


class TestVerifiedFormat:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "blob.npz")
        payload = npz_bytes({"a": np.arange(5.0)})
        write_verified(path, payload)
        assert read_verified(path) == payload
        assert np.array_equal(load_verified_npz(path)["a"], np.arange(5.0))

    def test_torn_write_detected(self, tmp_path):
        path = str(tmp_path / "torn.npz")
        write_verified(path, npz_bytes({"a": np.arange(64.0)}))
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) * 2 // 3])  # torn tail
        with pytest.raises(ChecksumError):
            load_verified_npz(path)

    def test_flipped_byte_detected(self, tmp_path):
        path = str(tmp_path / "flip.npz")
        write_verified(path, npz_bytes({"a": np.arange(64.0)}))
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x5A
        open(path, "wb").write(bytes(blob))
        with pytest.raises(ChecksumError):
            load_verified_npz(path)

    def test_legacy_trailerless_file_still_loads(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path[: -len(".npz")] + ".npz", a=np.arange(3.0))
        from repro.checkpoint import split_trailer

        _, crc = split_trailer(open(path, "rb").read())
        assert crc is None  # legacy: accepted, unverifiable
        assert np.array_equal(load_verified_npz(path)["a"], np.arange(3.0))

    def test_npz_with_trailer_opens_with_plain_numpy(self, tmp_path):
        """Old readers (np.load) skip the trailer via the zip EOCD scan."""
        path = str(tmp_path / "compat.npz")
        write_verified(path, npz_bytes({"a": np.arange(4.0)}))
        with np.load(path) as handle:
            assert np.array_equal(handle["a"], np.arange(4.0))


class TestTrainingCheckpointVerification:
    def _save(self, path):
        model = small_classifier()
        opt = Adam(model.parameters(), lr=0.01)
        _loss_fn(model(Tensor(X[:8])), Y[:8]).backward()
        opt.step()
        save_training_checkpoint(path, model, opt, iteration=3,
                                 extra={"epoch": 1})
        return model, opt

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "train.npz")
        model, opt = self._save(path)
        fresh = small_classifier()
        fresh_opt = Adam(fresh.parameters(), lr=0.01)
        info = load_training_checkpoint(path, fresh, fresh_opt)
        assert info["iteration"] == 3
        assert info["extra"]["epoch"] == 1
        for a, b in zip(model.parameters(), fresh.parameters()):
            assert np.array_equal(a.data, b.data)

    def test_partial_write_rejected_with_checksum_error(self, tmp_path):
        """A half-written file raises ChecksumError instead of feeding
        garbage to the unpickler."""
        path = str(tmp_path / "train.npz")
        self._save(path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        fresh = small_classifier()
        with pytest.raises(ChecksumError):
            load_training_checkpoint(path, fresh)


class TestManifest:
    def _manifest(self, rank_dir, generation, name=b"x" * 100):
        gen_dir = os.path.join(rank_dir, generation_dirname(generation))
        payload = npz_bytes({"a": np.arange(8.0)})
        write_verified(os.path.join(gen_dir, "shard.npz"), payload)
        from repro.checkpoint import ManifestFile, TRAILER_SIZE, crc_of

        manifest = Manifest(
            generation=generation, rank=0, world_size=2,
            iteration=generation, mode="sharded",
            files=[ManifestFile("shard.npz", len(payload) + TRAILER_SIZE,
                                crc_of(payload))],
        )
        write_manifest(rank_dir, manifest)
        return manifest

    def test_commit_verify_and_retention(self, tmp_path):
        rank_dir = str(tmp_path / "rank0")
        for generation in (1, 2, 3):
            self._manifest(rank_dir, generation)
        assert list_generations(rank_dir) == [1, 2, 3]
        manifest = load_generation_manifest(rank_dir, 2)
        verify_generation(rank_dir, manifest)  # no raise
        deleted = apply_retention(rank_dir, keep=2)
        assert deleted == [1]
        assert list_generations(rank_dir) == [2, 3]

    def test_verify_catches_disk_damage(self, tmp_path):
        rank_dir = str(tmp_path / "rank0")
        manifest = self._manifest(rank_dir, 1)
        target = os.path.join(rank_dir, generation_dirname(1), "shard.npz")
        blob = open(target, "rb").read()
        open(target, "wb").write(blob[:-10])
        with pytest.raises(ChecksumError):
            verify_generation(rank_dir, manifest)


def _train_zero2(rank, world, iters=3, bucket_cap_mb=0.0001):
    model = ShardedDataParallel(
        small_classifier(), lambda ps: SGD(ps, lr=0.05),
        bucket_cap_mb=bucket_cap_mb,
    )
    per = len(X) // world
    shard = slice(rank * per, (rank + 1) * per)
    for _ in range(iters):
        model.zero_grad()
        _loss_fn(model(Tensor(X[shard])), Y[shard]).backward()
        model.step()
    return model


class TestEngineFullMode:
    def test_save_restore_round_trip(self, tmp_path):
        root = str(tmp_path)

        def body(rank):
            model = small_classifier()
            opt = Adam(model.parameters(), lr=0.01)
            _loss_fn(model(Tensor(X[:8])), Y[:8]).backward()
            opt.step()
            engine = CheckpointEngine(root, rank=rank, world=2,
                                      async_write=False)
            engine.save_full(model, opt, iteration=5)
            engine.close()
            # Full-mode restore reads rank 0's payload: barrier so a fast
            # rank cannot look before the slow rank's commit lands.
            get_context().default_group.barrier()
            fresh = small_classifier()
            fresh_opt = Adam(fresh.parameters(), lr=0.01)
            restore = CheckpointEngine(root, rank=rank, world=2,
                                       async_write=False)
            info = restore.load_latest(module=fresh, optimizer=fresh_opt)
            restore.close()
            assert info is not None and info["iteration"] == 5
            assert info["generation"] == 5
            return [p.data.copy() for p in model.parameters()], [
                p.data.copy() for p in fresh.parameters()
            ]

        for saved, restored in run_distributed(2, body, backend="gloo"):
            for a, b in zip(saved, restored):
                assert np.array_equal(a, b)

    def test_async_save_does_not_block_on_delay(self, tmp_path):
        """delay_write stalls the background writer, not the trainer."""
        root = str(tmp_path)
        plan = FaultPlan([delay_write(0.3, times=1)])

        def body(rank):
            model = small_classifier()
            engine = CheckpointEngine(root, rank=rank, world=1,
                                      async_write=True, fault_plan=plan)
            t0 = time.perf_counter()
            engine.save_full(model, iteration=1)
            stall = time.perf_counter() - t0
            assert engine.wait(timeout=5.0)
            stats = engine.stats()
            engine.close()
            assert stall < 0.25  # snapshot only; the 0.3 s delay is hidden
            assert stats["saves"] == 1
            return True

        assert run_distributed(1, body, backend="gloo") == [True]


class TestEngineReplication:
    def test_restore_from_buddy_after_losing_local_dir(self, tmp_path):
        root = str(tmp_path)

        def save_body(rank):
            model = _train_zero2(rank, 2)
            hub = get_context().default_group.hub
            engine = CheckpointEngine(root, rank=rank, world=2, hub=hub,
                                      replication_factor=2, async_write=False)
            engine.save_sharded(model, iteration=3)
            engine.wait(5.0)
            time.sleep(0.2)  # let buddy receivers persist the pushes
            stats = engine.stats()
            engine.close()
            reference = model.state_dict()
            return stats, reference

        results = run_distributed(2, save_body, backend="gloo")
        assert all(s["replicas_sent"] == 1 for s, _ in results)
        assert all(s["replicas_received"] == 1 for s, _ in results)
        reference = results[0][1]

        # Lose rank 0's entire local directory; only rank 1's replica of
        # it survives.
        shutil.rmtree(os.path.join(root, "rank0"))

        def restore_body(rank):
            model = ShardedDataParallel(
                small_classifier(), lambda ps: SGD(ps, lr=0.05),
                bucket_cap_mb=0.0001,
            )
            engine = CheckpointEngine(root, rank=rank, world=2,
                                      async_write=False)
            info = engine.load_latest(model=model)
            engine.close()
            assert info is not None and info["iteration"] == 3
            assert info["sources"][0] == "replica"
            assert info["sources"][1] == "local"
            return model.state_dict()

        for state in run_distributed(2, restore_body, backend="gloo"):
            for key, value in reference.items():
                assert np.array_equal(value, state[key])

    def test_corrupt_local_write_falls_back_to_replica(self, tmp_path):
        """corrupt_file tears rank 0's local bytes; the manifest CRC
        rejects them and the buddy's (pre-fault) replica restores."""
        root = str(tmp_path)
        plan = FaultPlan([corrupt_file(rank=0, times=None)])

        def save_body(rank):
            model = _train_zero2(rank, 2)
            hub = get_context().default_group.hub
            engine = CheckpointEngine(root, rank=rank, world=2, hub=hub,
                                      replication_factor=2,
                                      async_write=False, fault_plan=plan)
            engine.save_sharded(model, iteration=2)
            engine.wait(5.0)
            time.sleep(0.2)
            engine.close()
            return model.state_dict()

        reference = run_distributed(2, save_body, backend="gloo")[0]

        def restore_body(rank):
            model = ShardedDataParallel(
                small_classifier(), lambda ps: SGD(ps, lr=0.05),
                bucket_cap_mb=0.0001,
            )
            engine = CheckpointEngine(root, rank=rank, world=2,
                                      async_write=False)
            info = engine.load_latest(model=model)
            stats = engine.stats()
            engine.close()
            assert info is not None
            assert info["sources"][0] == "replica"
            assert stats["verify_failures"] > 0
            return model.state_dict()

        for state in run_distributed(2, restore_body, backend="gloo"):
            for key, value in reference.items():
                assert np.array_equal(value, state[key])

    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_chaos_matrix_any_single_rank_loss_survivable(
        self, tmp_path, victim
    ):
        """rf=2, world 3: kill each rank in turn (local files gone);
        the buddy restore is bitwise identical to the live restore."""
        root = str(tmp_path / "live")

        def save_body(rank):
            model = _train_zero2(rank, 3)
            hub = get_context().default_group.hub
            engine = CheckpointEngine(root, rank=rank, world=3, hub=hub,
                                      replication_factor=2, async_write=False)
            engine.save_sharded(model, iteration=3)
            engine.wait(5.0)
            time.sleep(0.2)
            engine.close()
            return model.state_dict()

        reference = run_distributed(3, save_body, backend="gloo")[0]

        dead_root = str(tmp_path / f"dead{victim}")
        shutil.copytree(root, dead_root)
        shutil.rmtree(os.path.join(dead_root, f"rank{victim}"))

        def restore_body(rank):
            model = ShardedDataParallel(
                small_classifier(), lambda ps: SGD(ps, lr=0.05),
                bucket_cap_mb=0.0001,
            )
            engine = CheckpointEngine(dead_root, rank=rank, world=3,
                                      async_write=False)
            info = engine.load_latest(model=model)
            engine.close()
            assert info is not None and info["iteration"] == 3
            assert info["sources"][victim] == "replica"
            return model.state_dict()

        for state in run_distributed(3, restore_body, backend="gloo"):
            for key, value in reference.items():
                assert np.array_equal(value, state[key])


class TestRetentionAndStats:
    def test_generations_are_pruned_to_keep(self, tmp_path):
        root = str(tmp_path)

        def body(rank):
            model = small_classifier()
            engine = CheckpointEngine(root, rank=rank, world=1,
                                      async_write=False, keep=2)
            for iteration in (1, 2, 3, 4):
                engine.save_full(model, iteration=iteration)
            stats = engine.stats()
            engine.close()
            assert list_generations(engine.rank_dir) == [3, 4]
            assert stats["retention_deleted"] == 2
            assert stats["last_generation"] == 4
            return True

        assert run_distributed(1, body, backend="gloo") == [True]

    def test_ddp_stats_exposes_engine_section(self, tmp_path):
        root = str(tmp_path)

        def body(rank):
            from repro.core.ddp import DistributedDataParallel

            model = DistributedDataParallel(small_classifier())
            engine = CheckpointEngine(root, rank=rank, world=2,
                                      async_write=False)
            engine.save_full(model.module, iteration=1)
            section = model.ddp_stats()["checkpoint"]
            engine.close()
            assert section is not None
            assert section["saves"] == 1
            assert section["replication_factor"] == 1
            return True

        assert run_distributed(2, body, backend="gloo") == [True, True]
