"""ZeRO-1/2/3 sharded data parallelism (``repro.sharded``).

The defining property of every stage is *parity*: sharding is a memory
layout, not an algorithm change, so each stage must track plain DDP
bit-for-bit-close on the same seeds — on an MLP and on the transformer
model (paper §7 positions ZeRO as "data parallelism with minimum model
replication").  On top of parity, the stages have observable structural
properties (ZeRO-2 drops full gradients, ZeRO-3 keeps parameters as
near-zero-byte stubs between materializations), checkpoints round-trip
through both the sharded and the plain loaders, and a crash injected
mid-``all_gather_flat`` either fails with a named culprit or is
survived by the elastic supervisor.
"""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core import DistributedDataParallel
from repro.models import TinyTransformer
from repro.optim import SGD, Adam
from repro.resilience import ElasticConfig, FaultPlan, crash_rank, run_elastic
from repro.sharded import (
    FullyShardedDataParallel,
    ShardedDataParallel,
    ShardedOptimizer,
    measure_ddp_bytes,
    storage_bytes,
)
from repro.utils import manual_seed
from repro.utils.checkpoint import load_training_checkpoint

from conftest import run_world, small_classifier

_rng = np.random.default_rng(0)
X = _rng.standard_normal((24, 6))
Y = _rng.integers(0, 4, 24)
TOKENS = _rng.integers(0, 32, (32, 8))
LABELS = _rng.integers(0, 2, 32)

SMALL_BUCKETS = {"bucket_cap_mb": 0.0001}  # force several buckets


def _mlp_shard(rank, world):
    per = len(X) // world
    return slice(rank * per, (rank + 1) * per)


def _make_transformer():
    manual_seed(5)
    return TinyTransformer(
        vocab_size=32, max_seq_len=8, hidden=16, num_heads=2,
        num_layers=1, ffn_dim=32, num_classes=2,
    )


def _train_mlp(model_wrap, rank, world, iters=5):
    """Shared training loop: ``model_wrap`` builds (callable, step, zero_grad,
    state_fn) from the fresh seeded classifier."""
    model = small_classifier()
    forward, do_step, do_zero, state_fn = model_wrap(model)
    loss_fn = nn.CrossEntropyLoss()
    shard = _mlp_shard(rank, world)
    losses = []
    for _ in range(iters):
        do_zero()
        loss = loss_fn(forward(Tensor(X[shard])), Y[shard])
        loss.backward()
        do_step()
        losses.append(float(loss.data))
    return losses, {k: np.asarray(v).copy() for k, v in state_fn().items()}


def _ddp_wrap(lr=0.05, momentum=0.9):
    def wrap(model):
        ddp = DistributedDataParallel(model, **SMALL_BUCKETS)
        opt = SGD(ddp.parameters(), lr=lr, momentum=momentum)
        return ddp, opt.step, opt.zero_grad, model.state_dict
    return wrap


def _zero1_wrap(lr=0.05, momentum=0.9):
    def wrap(model):
        ddp = DistributedDataParallel(model, **SMALL_BUCKETS)
        opt = ShardedOptimizer(
            list(ddp.parameters()), lambda ps: SGD(ps, lr=lr, momentum=momentum)
        )

        def step():
            opt.set_grads_from_params()
            opt.step()

        return ddp, step, opt.zero_grad, model.state_dict
    return wrap


def _zero2_wrap(lr=0.05, momentum=0.9):
    def wrap(model):
        sdp = ShardedDataParallel(
            model, lambda ps: SGD(ps, lr=lr, momentum=momentum), **SMALL_BUCKETS
        )
        return sdp, sdp.step, sdp.zero_grad, sdp.state_dict
    return wrap


def _zero3_wrap(lr=0.05, momentum=0.9):
    def wrap(model):
        fsdp = FullyShardedDataParallel(
            model, lambda ps: SGD(ps, lr=lr, momentum=momentum)
        )
        return fsdp, fsdp.step, fsdp.zero_grad, fsdp.state_dict
    return wrap


STAGE_WRAPS = {
    "zero1": _zero1_wrap,
    "zero2": _zero2_wrap,
    "zero3": _zero3_wrap,
}


class TestMLPParity:
    """Each stage reproduces DDP's loss curve and final parameters."""

    @pytest.mark.parametrize("world", [2, 4])
    @pytest.mark.parametrize("stage", ["zero1", "zero2", "zero3"])
    def test_stage_matches_ddp(self, stage, world):
        baseline = run_world(
            world, lambda rank: _train_mlp(_ddp_wrap(), rank, world),
            backend="gloo",
        )
        sharded = run_world(
            world, lambda rank: _train_mlp(STAGE_WRAPS[stage](), rank, world),
            backend="gloo",
        )
        for (ddp_losses, ddp_state), (losses, state) in zip(baseline, sharded):
            np.testing.assert_allclose(losses, ddp_losses, rtol=1e-9, atol=1e-10)
            assert state.keys() == ddp_state.keys()
            for name in ddp_state:
                np.testing.assert_allclose(
                    state[name], ddp_state[name], rtol=1e-8, atol=1e-10
                )

    def test_replicas_agree_after_every_stage(self):
        """All ranks end with identical parameters (the gather worked)."""
        for stage in ["zero1", "zero2", "zero3"]:
            results = run_world(
                2, lambda rank: _train_mlp(STAGE_WRAPS[stage](), rank, 2),
                backend="gloo",
            )
            for name, value in results[0][1].items():
                np.testing.assert_array_equal(value, results[1][1][name])


class TestTransformerParity:
    """Same-seed Adam training of the transformer: stages track DDP."""

    def _train(self, wrapped, rank, iters=5):
        loss_fn = nn.CrossEntropyLoss()
        forward, do_step, do_zero, state_fn = wrapped
        shard = slice(rank * 16, (rank + 1) * 16)
        x, y = TOKENS[shard], LABELS[shard]
        losses = []
        for _ in range(iters):
            do_zero()
            loss = loss_fn(forward(x), y)
            loss.backward()
            do_step()
            losses.append(float(loss.data))
        return losses, {k: np.asarray(v).copy() for k, v in state_fn().items()}

    def _ddp_body(self, rank):
        model = _make_transformer()
        ddp = DistributedDataParallel(model, bucket_cap_mb=0.0005)
        opt = Adam(ddp.parameters(), lr=1e-2)
        return self._train(
            (ddp, opt.step, opt.zero_grad, model.state_dict), rank
        )

    @pytest.mark.parametrize("stage", ["zero1", "zero2", "zero3"])
    def test_stage_matches_ddp(self, stage):
        def sharded_body(rank):
            model = _make_transformer()
            if stage == "zero1":
                ddp = DistributedDataParallel(model, bucket_cap_mb=0.0005)
                opt = ShardedOptimizer(
                    list(ddp.parameters()), lambda ps: Adam(ps, lr=1e-2)
                )

                def step():
                    opt.set_grads_from_params()
                    opt.step()

                wrapped = (ddp, step, opt.zero_grad, model.state_dict)
            elif stage == "zero2":
                sdp = ShardedDataParallel(
                    model, lambda ps: Adam(ps, lr=1e-2), bucket_cap_mb=0.0005
                )
                wrapped = (sdp, sdp.step, sdp.zero_grad, sdp.state_dict)
            else:
                fsdp = FullyShardedDataParallel(model, lambda ps: Adam(ps, lr=1e-2))
                wrapped = (fsdp, fsdp.step, fsdp.zero_grad, fsdp.state_dict)
            return self._train(wrapped, rank)

        baseline = run_world(2, self._ddp_body, backend="gloo", timeout=60)
        sharded = run_world(2, sharded_body, backend="gloo", timeout=60)
        for (ddp_losses, ddp_state), (losses, state) in zip(baseline, sharded):
            assert losses[-1] < losses[0]  # actually training
            np.testing.assert_allclose(losses, ddp_losses, rtol=1e-7, atol=1e-9)
            for name in ddp_state:
                np.testing.assert_allclose(
                    state[name], ddp_state[name], rtol=1e-6, atol=1e-9
                )


class TestZero2Properties:
    def test_full_gradients_are_dropped_after_step(self):
        """ZeRO-2's defining property: no rank keeps the full gradient
        set — ``param.grad`` is freed once the shard grads are in."""

        def body(rank):
            model = small_classifier()
            sdp = ShardedDataParallel(
                model, lambda ps: SGD(ps, lr=0.05), **SMALL_BUCKETS
            )
            loss_fn = nn.CrossEntropyLoss()
            loss = loss_fn(sdp(Tensor(X[:4])), Y[:4])
            loss.backward()
            had_grads = all(p.grad is not None for p in model.parameters())
            sdp.step()
            return had_grads, [p.grad for p in model.parameters()]

        for had_grads, grads in run_world(2, body, backend="gloo"):
            assert had_grads
            assert all(g is None for g in grads)

    def test_stats_surface_in_ddp_stats(self):
        def body(rank):
            model = small_classifier()
            sdp = ShardedDataParallel(
                model, lambda ps: SGD(ps, lr=0.05), **SMALL_BUCKETS
            )
            loss_fn = nn.CrossEntropyLoss()
            for _ in range(3):
                sdp.zero_grad()
                loss_fn(sdp(Tensor(X[:4])), Y[:4]).backward()
                sdp.step()
            return sdp.ddp_stats()["sharded"], sdp.optimizer.layout.num_buckets

        for stats, num_buckets in run_world(2, body, backend="gloo"):
            assert stats["stage"] == "zero2"
            assert stats["world_size"] == 2
            assert stats["iterations"] == 3
            assert stats["reduce_scatter_count"] == 3 * num_buckets
            assert stats["reduce_scatter_bytes"] > 0
            assert stats["peak_bytes_per_rank"] > 0

    def test_step_before_backward_names_unready_params(self):
        def body(rank):
            model = small_classifier()
            sdp = ShardedDataParallel(model, lambda ps: SGD(ps, lr=0.05))
            sdp(Tensor(X[:4]))  # forward only, no backward
            try:
                sdp.step()
            except RuntimeError as exc:
                return str(exc)
            return None

        for message in run_world(2, body, backend="gloo"):
            assert message is not None
            assert "0.weight" in message  # names the culprit parameters


class TestZero3Properties:
    def test_parameters_are_stubs_between_iterations(self):
        """Outside a materialization window each parameter is a
        zero-stride broadcast stub: full storage is ~one element."""

        def body(rank):
            model = small_classifier()
            fsdp = FullyShardedDataParallel(model, lambda ps: SGD(ps, lr=0.05))
            idle = storage_bytes(p.data for p in model.parameters())
            loss_fn = nn.CrossEntropyLoss()
            loss = loss_fn(fsdp(Tensor(X[:4])), Y[:4])
            during = storage_bytes(p.data for p in model.parameters())
            loss.backward()
            fsdp.step()
            after = storage_bytes(p.data for p in model.parameters())
            full = sum(p.data.size * p.data.itemsize for p in model.parameters())
            return idle, during, after, full

        for idle, during, after, full in run_world(2, body, backend="gloo"):
            num_params = 4
            assert idle <= 8 * num_params          # stubs only
            assert during == full                   # materialized for forward
            assert after <= 8 * num_params          # freed again after step
            assert full >= 40 * idle                # the saving is real

    def test_gather_and_free_counters(self):
        def body(rank):
            model = small_classifier()
            fsdp = FullyShardedDataParallel(model, lambda ps: SGD(ps, lr=0.05))
            loss_fn = nn.CrossEntropyLoss()
            for _ in range(2):
                fsdp.zero_grad()
                loss_fn(fsdp(Tensor(X[:4])), Y[:4]).backward()
                fsdp.step()
            return fsdp.ddp_stats()["sharded"], fsdp.num_units

        for stats, units in run_world(2, body, backend="gloo"):
            assert stats["stage"] == "zero3"
            # One gather per unit per forward; one free per unit per
            # backward (the constructor's initial free is not counted).
            assert stats["gather_count"] == 2 * units
            assert stats["free_count"] == 2 * units
            assert stats["all_gather_bytes"] > 0
            assert stats["peak_bytes_per_rank"] > 0

    def test_peak_memory_beats_ddp_at_world_4(self):
        """The acceptance crossover: measured per-rank peak bytes of
        ZeRO-3 (params + grads + shards + optimizer state) undercut an
        identical DDP replica's at world 4."""
        world = 4

        def ddp_body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, **SMALL_BUCKETS)
            opt = SGD(ddp.parameters(), lr=0.05, momentum=0.9)
            loss_fn = nn.CrossEntropyLoss()
            for _ in range(2):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[:4])), Y[:4]).backward()
                opt.step()
            return measure_ddp_bytes(ddp, opt)

        def fsdp_body(rank):
            model = small_classifier()
            fsdp = FullyShardedDataParallel(
                model, lambda ps: SGD(ps, lr=0.05, momentum=0.9)
            )
            loss_fn = nn.CrossEntropyLoss()
            for _ in range(2):
                fsdp.zero_grad()
                loss_fn(fsdp(Tensor(X[:4])), Y[:4]).backward()
                fsdp.step()
            return fsdp.ddp_stats()["sharded"]["peak_bytes_per_rank"]

        ddp_bytes = run_world(world, ddp_body, backend="gloo")
        fsdp_peaks = run_world(world, fsdp_body, backend="gloo")
        for peak, ddp in zip(fsdp_peaks, ddp_bytes):
            assert peak < ddp

    def test_summon_full_params_round_trip(self):
        def body(rank):
            model = small_classifier()
            fsdp = FullyShardedDataParallel(model, lambda ps: SGD(ps, lr=0.05))
            with fsdp.summon_full_params():
                inside = {
                    k: np.asarray(v).copy() for k, v in model.state_dict().items()
                }
            stubby = storage_bytes(p.data for p in model.parameters())
            return inside, stubby

        results = run_world(2, body, backend="gloo")
        manual_seed(7)
        reference = nn.Sequential(
            nn.Linear(6, 16), nn.ReLU(), nn.Linear(16, 4)
        ).state_dict()
        for inside, stubby in results:
            assert stubby <= 8 * 4  # freed again on exit
            for name, value in reference.items():
                np.testing.assert_array_equal(inside[name], value)


class TestShardedCheckpoint:
    def test_zero2_resume_matches_uninterrupted(self, tmp_path):
        path = str(tmp_path / "z2.npz")

        def uninterrupted(rank):
            _, state = _train_mlp(_zero2_wrap(), rank, 2, iters=4)
            return state

        def resumed(rank):
            model = small_classifier()
            sdp = ShardedDataParallel(
                model, lambda ps: SGD(ps, lr=0.05, momentum=0.9), **SMALL_BUCKETS
            )
            loss_fn = nn.CrossEntropyLoss()
            shard = _mlp_shard(rank, 2)
            for _ in range(2):
                sdp.zero_grad()
                loss_fn(sdp(Tensor(X[shard])), Y[shard]).backward()
                sdp.step()
            sdp.save_training_state(path, iteration=2, extra={"note": 1})
            # A *fresh* replica restores and continues the trajectory.
            fresh = small_classifier(seed=99)  # deliberately different init
            sdp2 = ShardedDataParallel(
                fresh, lambda ps: SGD(ps, lr=0.05, momentum=0.9), **SMALL_BUCKETS
            )
            info = sdp2.load_training_state(path)
            for _ in range(info["iteration"], 4):
                sdp2.zero_grad()
                loss_fn(sdp2(Tensor(X[shard])), Y[shard]).backward()
                sdp2.step()
            return info, {
                k: np.asarray(v).copy() for k, v in sdp2.state_dict().items()
            }

        straight = run_world(2, uninterrupted, backend="gloo")
        results = run_world(2, resumed, backend="gloo")
        for (info, state), reference in zip(results, straight):
            assert info["iteration"] == 2
            assert int(info["extra"]["note"]) == 1
            for name in reference:
                np.testing.assert_allclose(
                    state[name], reference[name], rtol=1e-9, atol=1e-12
                )

    def test_sharded_checkpoint_loads_with_plain_loader(self, tmp_path):
        """The consolidated file is byte-compatible with the plain
        ``load_training_checkpoint``: a single process restores model
        and (positional) optimizer state from an FSDP-written file."""
        path = str(tmp_path / "fsdp.npz")

        def body(rank):
            model = small_classifier()
            fsdp = FullyShardedDataParallel(
                model, lambda ps: SGD(ps, lr=0.05, momentum=0.9)
            )
            loss_fn = nn.CrossEntropyLoss()
            shard = _mlp_shard(rank, 2)
            for _ in range(3):
                fsdp.zero_grad()
                loss_fn(fsdp(Tensor(X[shard])), Y[shard]).backward()
                fsdp.step()
            fsdp.save_training_state(path, iteration=3)
            return {k: np.asarray(v).copy() for k, v in fsdp.state_dict().items()}

        sharded_state = run_world(2, body, backend="gloo")[0]

        plain = small_classifier(seed=123)
        opt = SGD(plain.parameters(), lr=0.05, momentum=0.9)
        info = load_training_checkpoint(path, plain, opt)
        assert info["iteration"] == 3
        for name, value in plain.state_dict().items():
            np.testing.assert_allclose(value, sharded_state[name], atol=1e-12)
        # Momentum buffers were consolidated for every parameter.
        for param in plain.parameters():
            buf = opt.state[id(param)]["momentum_buffer"]
            assert buf.shape == param.data.shape
            assert np.any(buf != 0)

    def test_plain_loader_rejects_wrong_parameter_count(self, tmp_path):
        path = str(tmp_path / "z2.npz")

        def body(rank):
            model = small_classifier()
            sdp = ShardedDataParallel(model, lambda ps: SGD(ps, lr=0.05, momentum=0.9))
            loss_fn = nn.CrossEntropyLoss()
            sdp.zero_grad()
            loss_fn(sdp(Tensor(X[:4])), Y[:4]).backward()
            sdp.step()
            sdp.save_training_state(path)
            return True

        assert all(run_world(2, body, backend="gloo"))
        other = small_classifier(seed=11)
        # Same architecture, but the optimizer only covers half the
        # parameters: positional restore must refuse, not misalign.
        opt = SGD(list(other.parameters())[:2], lr=0.05, momentum=0.9)
        with pytest.raises(ValueError, match="differing parameter lists"):
            load_training_checkpoint(path, other, opt)


class TestOptimizerStateRoundTrip:
    """Satellite: positional optimizer state fails loudly, not silently."""

    def _trained_sgd(self):
        model = small_classifier()
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        loss = nn.CrossEntropyLoss()(model(Tensor(X[:4])), Y[:4])
        loss.backward()
        opt.step()
        return model, opt

    def test_round_trip_restores_momentum(self):
        _, opt = self._trained_sgd()
        saved = opt.state_dict()
        target_model = small_classifier()
        target = SGD(target_model.parameters(), lr=0.05, momentum=0.9)
        target.load_state_dict(saved)
        for p_src, p_dst in zip(opt._ordered_params(), target._ordered_params()):
            np.testing.assert_array_equal(
                opt.state[id(p_src)]["momentum_buffer"],
                target.state[id(p_dst)]["momentum_buffer"],
            )

    def test_differing_param_count_raises(self):
        _, opt = self._trained_sgd()
        saved = opt.state_dict()
        assert saved["num_params"] == 4
        smaller = SGD(nn.Linear(6, 4).parameters(), lr=0.05)
        with pytest.raises(ValueError, match="differing parameter lists"):
            smaller.load_state_dict(saved)

    def test_shape_mismatch_raises(self):
        _, opt = self._trained_sgd()
        saved = opt.state_dict()
        manual_seed(3)
        other = nn.Sequential(nn.Linear(6, 8), nn.ReLU(), nn.Linear(8, 4))
        target = SGD(other.parameters(), lr=0.05, momentum=0.9)
        with pytest.raises(ValueError, match="does not match"):
            target.load_state_dict(saved)


class TestChaosMidAllGather:
    """Satellite: a rank dying mid-``all_gather_flat`` must either fail
    with a named culprit or be survived by the elastic supervisor."""

    def test_crash_names_the_culprit(self):
        plan = FaultPlan([
            crash_rank(1, scope="collective", op="all_gather_flat",
                       after=2, times=1),
        ])

        def body(rank):
            model = small_classifier()
            fsdp = FullyShardedDataParallel(model, lambda ps: SGD(ps, lr=0.05))
            loss_fn = nn.CrossEntropyLoss()
            for _ in range(3):
                fsdp.zero_grad()
                loss_fn(fsdp(Tensor(X[:4])), Y[:4]).backward()
                fsdp.step()
            return True

        from repro.comm import run_distributed

        with pytest.raises(RuntimeError, match="rank 1") as excinfo:
            run_distributed(2, body, backend="gloo", timeout=3, fault_plan=plan)
        assert "all_gather_flat" in str(excinfo.value.__cause__)

    def test_elastic_shrink_survives_the_crash(self, tmp_path):
        plan = FaultPlan([
            crash_rank(2, scope="collective", op="all_gather_flat",
                       after=8, times=1),
        ])

        def setup(ctx):
            return small_classifier(), None

        loss_fn = nn.CrossEntropyLoss()

        def step(ctx, model, optimizer, iteration):
            per = len(X) // ctx.world_size
            shard = slice(ctx.rank * per, (ctx.rank + 1) * per)
            model.zero_grad()
            loss = loss_fn(model(Tensor(X[shard])), Y[shard])
            loss.backward()
            model.step()
            return float(loss.data)

        config = ElasticConfig(
            policy="shrink",
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            timeout=8.0,
            wrapper=lambda module, group: FullyShardedDataParallel(
                module, lambda ps: SGD(ps, lr=0.05), process_group=group
            ),
        )
        res = run_elastic(3, setup, step, total_iterations=4,
                          config=config, fault_plan=plan)
        assert res.completed
        assert res.deaths == [2]
        assert res.final_world_size == 2
        assert res.iterations == 4
        assert len(res.generations) == 2
        assert res.losses[-1] < res.losses[0]
