"""Utility helpers: seeding, units, checkpoint internals."""

import numpy as np
import pytest

from repro.utils import MB, KB, format_bytes, format_seconds, fork_rng, get_rng, manual_seed
from repro.utils.units import bytes_to_params, params_to_bytes


class TestSeeding:
    def test_manual_seed_reproducible(self):
        manual_seed(5)
        a = get_rng().standard_normal(4)
        manual_seed(5)
        b = get_rng().standard_normal(4)
        assert np.array_equal(a, b)

    def test_default_generator_exists(self):
        assert get_rng() is not None

    def test_fork_rng_restores(self):
        manual_seed(1)
        outer = get_rng()
        with fork_rng(99) as inner:
            assert get_rng() is inner
            assert inner is not outer
        assert get_rng() is outer

    def test_fork_rng_deterministic(self):
        with fork_rng(7):
            a = get_rng().random(3)
        with fork_rng(7):
            b = get_rng().random(3)
        assert np.array_equal(a, b)

    def test_per_thread_generators(self):
        import threading

        seen = {}

        def worker(name, seed):
            manual_seed(seed)
            seen[name] = get_rng().standard_normal(3)

        threads = [
            threading.Thread(target=worker, args=("a", 1)),
            threading.Thread(target=worker, args=("b", 2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not np.array_equal(seen["a"], seen["b"])


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * 1024

    def test_param_byte_conversions(self):
        assert params_to_bytes(10) == 40
        assert params_to_bytes(10, dtype_bytes=8) == 80
        assert bytes_to_params(40) == 10

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0B"
        assert format_bytes(25 * MB) == "25.0MB"
        assert format_bytes(2048) == "2.0KB"
        assert "GB" in format_bytes(3 * 1024**3)

    def test_format_seconds(self):
        assert format_seconds(5e-5) == "50.0us"
        assert format_seconds(0.25) == "250.0ms"
        assert format_seconds(2.5) == "2.50s"
