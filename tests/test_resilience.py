"""Fault plans, the retrying transport, heartbeats, and checkpoints.

The chaos seed is taken from ``REPRO_CHAOS_SEED`` (default 0) so CI can
sweep several seeds over the same suite — every probabilistic fault
draw is a pure hash of (seed, rule, edge, count), making each seeded
run exactly reproducible.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.comm import Store, run_distributed
from repro.comm.process_group import CollectiveTimeoutError, Work
from repro.comm.transport import TransportHub, TransportTimeoutError
from repro.core import DistributedDataParallel
from repro.debug.flight_recorder import FAILED, FlightRecorder
from repro.optim import SGD
from repro.resilience import (
    FaultPlan,
    Heartbeat,
    HeartbeatMonitor,
    ReliableTransportHub,
    RetryBudgetExceededError,
    RetryPolicy,
    corrupt,
    crash_rank,
    drop,
    duplicate,
)
from repro.resilience.faults import InjectedRankFailure
from repro.utils import load_training_checkpoint, save_training_checkpoint

from conftest import small_classifier

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


class TestFaultPlan:
    def test_same_seed_same_faults(self):
        """Probabilistic rules are reproducible: identical plans fault
        identical messages regardless of call interleaving."""

        def run(seed):
            plan = FaultPlan([drop(probability=0.3)], seed=seed)
            return [
                len(plan.on_send(0, 1, ("t", i), np.ones(2))) == 0
                for i in range(64)
            ]

        assert run(CHAOS_SEED) == run(CHAOS_SEED)

    def test_after_and_times_windows(self):
        plan = FaultPlan([drop(after=2, times=3)], seed=0)
        dropped = [
            len(plan.on_send(0, 1, "t", np.ones(1))) == 0 for i in range(10)
        ]
        # Skips the first 2 matches, fires exactly 3 times, then stops.
        assert dropped == [False, False, True, True, True] + [False] * 5

    def test_windows_are_per_edge(self):
        plan = FaultPlan([drop(times=1)], seed=0)
        assert plan.on_send(0, 1, "t", np.ones(1)) == []
        assert plan.on_send(2, 3, "t", np.ones(1)) == []  # separate edge
        assert len(plan.on_send(0, 1, "t", np.ones(1))) == 1

    def test_times_caps_firings_not_matches(self):
        """With probability < 1, ``times`` bounds actual triggers."""
        plan = FaultPlan([drop(probability=0.4, times=2)], seed=CHAOS_SEED)
        drops = sum(
            len(plan.on_send(0, 1, ("t", i), np.ones(1))) == 0
            for i in range(100)
        )
        assert drops == 2

    def test_collective_crash_rule(self):
        plan = FaultPlan([crash_rank(1, scope="collective", op="allreduce",
                                     after=2, times=1)])
        for seq in range(2):
            plan.on_collective(1, "allreduce", seq)  # inside `after` window
        plan.on_collective(0, "allreduce", 2)  # other rank: no match
        with pytest.raises(InjectedRankFailure):
            plan.on_collective(1, "allreduce", 2)
        plan.on_collective(1, "allreduce", 3)  # times=1: fired already

    def test_collective_scope_rejects_non_crash_actions(self):
        with pytest.raises(ValueError, match="crash_rank"):
            FaultPlan([drop(scope="collective")])


class TestReliableTransport:
    def test_retries_absorb_seeded_drops(self):
        """Every dropped message is recovered by retransmission — the
        stream arrives complete, in order, with retry counters > 0."""
        hub = ReliableTransportHub(
            2, default_timeout=5.0,
            retry=RetryPolicy(base_backoff=0.001), seed=CHAOS_SEED,
        )
        plan = FaultPlan([drop(probability=0.5)], seed=CHAOS_SEED).install(hub)
        for i in range(20):
            hub.send(0, 1, "t", np.full(4, float(i)))
        for i in range(20):
            out = hub.recv(1, 0, "t", timeout=5.0)
            assert np.allclose(out, float(i))
        stats = hub.resilience_stats()
        assert plan.total_triggered() > 0
        assert stats["total_retries"] > 0
        assert stats["total_retransmits"] > 0

    def test_duplicates_are_deduplicated(self):
        hub = ReliableTransportHub(2, default_timeout=2.0)
        FaultPlan([duplicate()]).install(hub)
        for i in range(5):
            hub.send(0, 1, "t", np.full(2, float(i)))
        for i in range(5):
            assert np.allclose(hub.recv(1, 0, "t"), float(i))
        assert hub.resilience_stats()["total_duplicates_dropped"] >= 1

    def test_corruption_detected_by_checksum_and_recovered(self):
        hub = ReliableTransportHub(2, default_timeout=2.0)
        FaultPlan([corrupt(times=1)]).install(hub)
        original = np.arange(8, dtype=np.float64)
        hub.send(0, 1, "t", original)
        out = hub.recv(1, 0, "t")
        # The corrupted delivery was rejected and the retransmitted
        # original delivered — not silently handed to the caller.
        assert np.array_equal(out, original)
        assert hub.resilience_stats()["total_corrupt_detected"] == 1

    def test_retry_budget_exhaustion_fails_fast(self):
        hub = ReliableTransportHub(
            2, default_timeout=30.0,
            retry=RetryPolicy(base_backoff=0.001, budget_per_collective=5),
        )
        FaultPlan([drop(rank=0, probability=1.0)]).install(hub)
        hub.send(0, 1, "t", np.ones(2))
        with pytest.raises(RetryBudgetExceededError, match="retry budget"):
            hub.recv(1, 0, "t", timeout=30.0)
        # Subclasses TransportTimeoutError: existing handling applies.
        assert issubclass(RetryBudgetExceededError, TransportTimeoutError)

    def test_plain_hub_has_no_reliability_overhead_path(self):
        """The base hub stays envelope-free (zero-copy hot path)."""
        hub = TransportHub(2)
        payload = np.ones(4)
        hub.send(0, 1, "t", payload)
        assert hub.recv(1, 0, "t") is payload

    def test_ddp_chaos_run_stays_in_lockstep(self):
        """DDP over the reliable hub under seeded drops: replicas agree
        bit-for-bit and the absorbed drops show up in ddp_stats()."""
        rng = np.random.default_rng(0)
        X, Y = rng.standard_normal((8, 6)), rng.integers(0, 4, 8)
        hub = ReliableTransportHub(
            2, default_timeout=10.0,
            retry=RetryPolicy(base_backoff=0.001), seed=CHAOS_SEED,
        )
        plan = FaultPlan([drop(probability=0.05)], seed=CHAOS_SEED)

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.0001)
            opt = SGD(ddp.parameters(), lr=0.05)
            loss_fn = nn.CrossEntropyLoss()
            shard = slice(rank * 4, (rank + 1) * 4)
            for _ in range(3):
                opt.zero_grad()
                loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()
                opt.step()
            return ddp.state_dict(), ddp.ddp_stats()["resilience"]

        results = run_distributed(
            2, body, backend="gloo", timeout=10, hub=hub,
            store=Store(timeout=10), fault_plan=plan,
        )
        states = [state for state, _ in results]
        for name in states[0]:
            assert np.array_equal(states[0][name], states[1][name])
        resilience = results[0][1]
        assert resilience is not None
        if plan.total_triggered():
            assert resilience["total_retries"] > 0


class TestWorkWaitTimeout:
    def test_wait_timeout_marks_work_failed(self):
        work = Work("allreduce#3")
        with pytest.raises(CollectiveTimeoutError, match="caller-side wait"):
            work.wait(timeout=0.01)
        assert work.is_completed()
        # The failure sticks: later waits re-raise it.
        with pytest.raises(CollectiveTimeoutError):
            work.wait(timeout=0.01)

    def test_wait_timeout_fails_flight_record(self):
        recorder = FlightRecorder(rank=0)
        record = recorder.record_scheduled(seq=3, op="allreduce", group_id=0)
        recorder.mark_started(record)
        work = Work("allreduce#3")
        work._debug_record = record
        with pytest.raises(CollectiveTimeoutError):
            work.wait(timeout=0.01)
        assert record.state == FAILED
        assert "caller-side wait" in record.error

    def test_worker_success_wins_race_against_timeout(self):
        """First completion wins: a worker finishing as the caller's
        wait expires keeps its successful result."""
        work = Work("allreduce#4")
        work._complete(None)
        work.wait(timeout=0.0)  # does not raise: success already landed
        assert work._error is None


class TestStoreLifecycle:
    def test_group_namespace_cleaned_after_shutdown(self):
        """A run leaves no per-seq signature / watchdog / barrier keys —
        long elastic sessions must not grow the store without bound."""
        store = Store(timeout=10)

        def body(rank):
            model = small_classifier()
            ddp = DistributedDataParallel(model, bucket_cap_mb=0.0001)
            loss_fn = nn.CrossEntropyLoss()
            rng = np.random.default_rng(0)
            X, Y = rng.standard_normal((4, 6)), rng.integers(0, 4, 4)
            shard = slice(rank * 2, (rank + 1) * 2)
            loss_fn(ddp(Tensor(X[shard])), Y[shard]).backward()

        run_distributed(2, body, backend="gloo", timeout=10, store=store)
        for prefix in ("pg0/", "pgdebug/0/", "mb/0/", "ddpchk/0/", "pgfini/0/"):
            assert store.keys(prefix) == [], f"leaked keys under {prefix}"

    def test_delete_prefix(self):
        store = Store()
        store.set("a/1", 1)
        store.set("a/2", 2)
        store.set("b/1", 3)
        assert store.delete_prefix("a/") == 2
        assert store.keys() == ["b/1"]


class TestHeartbeat:
    def test_monitor_detects_stopped_heartbeat(self):
        store = Store()
        beat = Heartbeat(store, "hb-test", 0, interval=0.02).start()
        monitor = HeartbeatMonitor(
            store, "hb-test", [0], miss_threshold=0.15, grace=0.5
        )
        time.sleep(0.05)
        assert monitor.dead_ranks() == []
        beat.stop()
        time.sleep(0.3)
        assert monitor.dead_ranks() == [0]

    def test_never_started_rank_dead_only_after_grace(self):
        store = Store()
        monitor = HeartbeatMonitor(
            store, "hb-test2", [0, 1], miss_threshold=0.05, grace=0.2
        )
        Heartbeat(store, "hb-test2", 0, interval=0.02).start()
        assert 1 not in monitor.dead_ranks()  # inside the grace window
        time.sleep(0.3)
        assert monitor.dead_ranks() == [1]


class TestTrainingCheckpoint:
    def test_roundtrip_restores_model_optimizer_iteration(self, tmp_path):
        from repro.optim import Adam

        path = str(tmp_path / "ckpt.npz")
        model = small_classifier(seed=3)
        opt = Adam(model.parameters(), lr=0.01)
        rng = np.random.default_rng(0)
        X, Y = rng.standard_normal((4, 6)), rng.integers(0, 4, 4)
        loss_fn = nn.CrossEntropyLoss()
        for _ in range(2):
            opt.zero_grad()
            loss_fn(model(Tensor(X)), Y).backward()
            opt.step()
        save_training_checkpoint(path, model, opt, iteration=2)

        fresh = small_classifier(seed=11)  # different weights
        fresh_opt = Adam(fresh.parameters(), lr=0.01)
        info = load_training_checkpoint(path, fresh, fresh_opt)
        assert info["iteration"] == 2
        for (name, theirs) in fresh.state_dict().items():
            assert np.array_equal(theirs, model.state_dict()[name])
        # One more identical step on both stays in lockstep — only true
        # if Adam's moments and step count were restored too.
        for m, o in ((model, opt), (fresh, fresh_opt)):
            o.zero_grad()
            loss_fn(m(Tensor(X)), Y).backward()
            o.step()
        for (name, theirs) in fresh.state_dict().items():
            assert np.allclose(theirs, model.state_dict()[name])
